//===- tests/gc/SweeperTest.cpp --------------------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "gc/Sweeper.h"
#include "runtime/Mutator.h"
#include "runtime/MutatorRegistry.h"

using namespace gengc;

namespace {

struct SweeperTest : ::testing::Test {
  SweeperTest()
      : H(HeapConfig{.HeapBytes = 4 << 20}), Registry(State),
        M(H, State, Registry), Engine(H, State) {}

  ObjectRef makeObject(Color C) {
    ObjectRef Ref = M.allocate(1, 16);
    H.storeColor(Ref, C);
    return Ref;
  }

  Heap H;
  CollectorState State;
  MutatorRegistry Registry;
  Mutator M;
  Sweeper Engine;
};

TEST_F(SweeperTest, FreesClearColoredCells) {
  ObjectRef Dead = makeObject(State.clearColor());
  Sweeper::Result R = Engine.sweep(SweepMode::GenerationalSimple, 2);
  EXPECT_EQ(H.loadColor(Dead), Color::Blue);
  EXPECT_GE(R.ObjectsFreed, 1u);
  EXPECT_GE(R.BytesFreed, H.storageBytesOf(Dead));
}

TEST_F(SweeperTest, SimpleModeKeepsBlackBlack) {
  ObjectRef Old = makeObject(Color::Black);
  Engine.sweep(SweepMode::GenerationalSimple, 2);
  EXPECT_EQ(H.loadColor(Old), Color::Black)
      << "black doubles as 'old'; sweep must not recolor it (Section 3)";
}

TEST_F(SweeperTest, KeepsAllocationColored) {
  ObjectRef Yellow = makeObject(State.allocationColor());
  Sweeper::Result R = Engine.sweep(SweepMode::GenerationalSimple, 2);
  EXPECT_EQ(H.loadColor(Yellow), State.allocationColor());
  EXPECT_EQ(R.AllocColoredBytes, H.storageBytesOf(Yellow));
}

TEST_F(SweeperTest, LeavesGrayLeftoversAlone) {
  ObjectRef Gray = makeObject(Color::Gray);
  Engine.sweep(SweepMode::GenerationalSimple, 2);
  EXPECT_EQ(H.loadColor(Gray), Color::Gray)
      << "late-shaded objects float to the next cycle";
}

TEST_F(SweeperTest, CountsLiveCorrectly) {
  makeObject(Color::Black);
  makeObject(Color::Black);
  makeObject(State.allocationColor());
  makeObject(State.clearColor()); // dead
  Sweeper::Result R = Engine.sweep(SweepMode::GenerationalSimple, 2);
  EXPECT_EQ(R.LiveObjectsAfter, 3u);
  EXPECT_EQ(R.ObjectsFreed, 1u);
}

TEST_F(SweeperTest, FreedCellsAreReusable) {
  std::vector<ObjectRef> Dead;
  for (int I = 0; I < 1000; ++I)
    Dead.push_back(makeObject(State.clearColor()));
  uint64_t UsedBefore = H.usedBytes();
  Engine.sweep(SweepMode::GenerationalSimple, 2);
  EXPECT_LT(H.usedBytes(), UsedBefore);
  // New allocations can land on the freed cells.
  ObjectRef Fresh = M.allocate(1, 16);
  EXPECT_NE(Fresh, NullRef);
}

TEST_F(SweeperTest, FreesLargeRuns) {
  ObjectRef Run = H.allocateLarge(100 << 10);
  ASSERT_NE(Run, NullRef);
  initObject(H, Run, 0, 0, 100 << 10);
  H.storeColor(Run, State.clearColor());
  uint32_t BlockIdx = H.blockIndexOf(Run);
  Sweeper::Result R = Engine.sweep(SweepMode::GenerationalSimple, 2);
  EXPECT_EQ(H.block(BlockIdx).State, BlockState::Free);
  EXPECT_GE(R.BytesFreed, 100u << 10);
}

TEST_F(SweeperTest, KeepsLiveLargeRuns) {
  ObjectRef Run = H.allocateLarge(80 << 10);
  ASSERT_NE(Run, NullRef);
  initObject(H, Run, 0, 0, 80 << 10);
  H.storeColor(Run, Color::Black);
  Engine.sweep(SweepMode::GenerationalSimple, 2);
  EXPECT_EQ(H.block(H.blockIndexOf(Run)).State, BlockState::LargeStart);
  EXPECT_EQ(H.loadColor(Run), Color::Black);
}

//===----------------------------------------------------------------------===
// Aging mode (Figure 5).
//===----------------------------------------------------------------------===

TEST_F(SweeperTest, AgingRecolorsYoungSurvivorsAndIncrementsAge) {
  ObjectRef Young = makeObject(Color::Black); // traced this cycle
  H.ages().setAge(Young, 1);
  Engine.sweep(SweepMode::GenerationalAging, 4);
  EXPECT_EQ(H.loadColor(Young), State.allocationColor())
      << "young survivors rejoin the young generation";
  EXPECT_EQ(H.ages().ageOf(Young), 2);
}

TEST_F(SweeperTest, AgingKeepsTenuredBlack) {
  ObjectRef Old = makeObject(Color::Black);
  H.ages().setAge(Old, 4); // at the threshold
  Engine.sweep(SweepMode::GenerationalAging, 4);
  EXPECT_EQ(H.loadColor(Old), Color::Black);
  EXPECT_EQ(H.ages().ageOf(Old), 4) << "age stops at the threshold";
}

TEST_F(SweeperTest, AgingAgesAllocationColoredObjectsToo) {
  // Figure 5's elseif applies to every non-clear object, including ones
  // created during the cycle.
  ObjectRef Created = makeObject(State.allocationColor());
  H.ages().setAge(Created, 1);
  Engine.sweep(SweepMode::GenerationalAging, 4);
  EXPECT_EQ(H.ages().ageOf(Created), 2);
  EXPECT_EQ(H.loadColor(Created), State.allocationColor());
}

TEST_F(SweeperTest, AgingResetsAgeOfFreedCells) {
  ObjectRef Dead = makeObject(State.clearColor());
  H.ages().setAge(Dead, 3);
  Engine.sweep(SweepMode::GenerationalAging, 4);
  EXPECT_EQ(H.loadColor(Dead), Color::Blue);
  EXPECT_EQ(H.ages().ageOf(Dead), 0);
}

TEST_F(SweeperTest, AgingPromotionAfterThresholdCollections) {
  ObjectRef Obj = makeObject(Color::Black);
  H.ages().setAge(Obj, 1);
  for (uint8_t Expected = 2; Expected <= 3; ++Expected) {
    Engine.sweep(SweepMode::GenerationalAging, 3);
    EXPECT_EQ(H.ages().ageOf(Obj), Expected);
    EXPECT_EQ(H.loadColor(Obj), State.allocationColor())
        << "age " << unsigned(Expected) << " was just assigned; the object "
        << "rejoins the young generation until the next trace";
    // Re-blacken, as the next trace would for a reachable object.
    H.storeColor(Obj, Color::Black);
  }
  // Age reached the threshold: the sweep now leaves it black — tenured.
  Engine.sweep(SweepMode::GenerationalAging, 3);
  EXPECT_EQ(H.loadColor(Obj), Color::Black);
  EXPECT_EQ(H.ages().ageOf(Obj), 3);
}

//===----------------------------------------------------------------------===
// Non-generational mode.
//===----------------------------------------------------------------------===

TEST_F(SweeperTest, NonGenKeepsAllocationColoredSurvivors) {
  ObjectRef Survivor = makeObject(State.allocationColor());
  ObjectRef Dead = makeObject(State.clearColor());
  Sweeper::Result R = Engine.sweep(SweepMode::NonGenerational, 0);
  EXPECT_EQ(H.loadColor(Survivor), State.allocationColor());
  EXPECT_EQ(H.loadColor(Dead), Color::Blue);
  EXPECT_EQ(R.LiveObjectsAfter, 1u);
}

} // namespace

//===- tests/gc/TriggerTest.cpp --------------------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "gc/Trigger.h"
#include "heap/Heap.h"

using namespace gengc;

namespace {

constexpr uint64_t MB = 1 << 20;

struct TriggerTest : ::testing::Test {
  TriggerTest() : H(HeapConfig{.HeapBytes = 32 * MB}) {}

  /// Makes the heap report roughly \p Bytes of used memory.
  void consume(uint64_t Bytes) {
    while (H.usedBytes() < Bytes)
      if (H.popFreeChain(NumSizeClasses - 1).Count == 0)
        FAIL() << "heap exhausted in test setup";
  }

  TriggerPolicy genPolicy() {
    TriggerPolicy P;
    P.YoungBytes = 4 * MB;
    P.Generational = true;
    return P;
  }

  Heap H;
};

TEST_F(TriggerTest, QuietHeapTriggersNothing) {
  Trigger T(genPolicy(), H.heapBytes());
  EXPECT_EQ(T.evaluate(H), CycleRequest::None);
}

TEST_F(TriggerTest, YoungAllocationTriggersPartial) {
  Trigger T(genPolicy(), H.heapBytes());
  T.afterCycle(0); // establish a grown soft limit
  consume(5 * MB); // > YoungBytes allocated since last GC
  EXPECT_EQ(T.evaluate(H), CycleRequest::Partial);
}

TEST_F(TriggerTest, NonGenerationalNeverRequestsPartial) {
  TriggerPolicy P = genPolicy();
  P.Generational = false;
  Trigger T(P, H.heapBytes());
  T.afterCycle(0);
  consume(5 * MB);
  EXPECT_EQ(T.evaluate(H), CycleRequest::None)
      << "below the occupancy line, the baseline does not collect";
}

TEST_F(TriggerTest, OccupancyTriggersFull) {
  Trigger T(genPolicy(), H.heapBytes());
  // Soft limit starts at 1 MB; filling well past it must demand a full.
  consume(2 * MB);
  EXPECT_EQ(T.evaluate(H), CycleRequest::Full);
}

TEST_F(TriggerTest, FullTakesPriorityOverPartial) {
  Trigger T(genPolicy(), H.heapBytes());
  consume(30 * MB); // exceeds any line
  EXPECT_EQ(T.evaluate(H), CycleRequest::Full);
}

TEST_F(TriggerTest, SoftLimitGrowsWithLiveEstimate) {
  Trigger T(genPolicy(), H.heapBytes());
  uint64_t Initial = T.softLimitBytes();
  T.afterCycle(10 * MB);
  EXPECT_GT(T.softLimitBytes(), Initial);
  EXPECT_GE(T.softLimitBytes(),
            uint64_t((10 + 3 * 4) * double(MB) / 0.8) - MB);
}

TEST_F(TriggerTest, SoftLimitNeverExceedsHeap) {
  Trigger T(genPolicy(), H.heapBytes());
  T.afterCycle(100 * MB);
  EXPECT_LE(T.softLimitBytes(), H.heapBytes());
}

TEST_F(TriggerTest, SoftLimitIsMonotone) {
  Trigger T(genPolicy(), H.heapBytes());
  T.afterCycle(10 * MB);
  uint64_t High = T.softLimitBytes();
  T.afterCycle(1 * MB); // shrinking live set does not shrink the heap
  EXPECT_EQ(T.softLimitBytes(), High);
}

TEST_F(TriggerTest, IdenticalCalculationForBothCollectors) {
  TriggerPolicy Gen = genPolicy();
  TriggerPolicy Base = genPolicy();
  Base.Generational = false;
  Trigger TG(Gen, H.heapBytes()), TB(Base, H.heapBytes());
  for (uint64_t Live : {uint64_t(0), 2 * MB, 8 * MB, 20 * MB}) {
    TG.afterCycle(Live);
    TB.afterCycle(Live);
    EXPECT_EQ(TG.softLimitBytes(), TB.softLimitBytes())
        << "Section 8: the full-collection calculation must be identical";
  }
}

} // namespace

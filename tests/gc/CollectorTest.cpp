//===- tests/gc/CollectorTest.cpp ------------------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
//
// The collector base machinery: thread lifecycle, request coalescing,
// trigger-driven autonomy, statistics bookkeeping and the memory-pressure
// path.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <thread>

#include "core/Runtime.h"

using namespace gengc;

namespace {

RuntimeConfig manualConfig() {
  RuntimeConfig Config;
  Config.Heap.HeapBytes = 8 << 20;
  Config.Choice = CollectorChoice::Generational;
  Config.Collector.Trigger.YoungBytes = 1ull << 40;
  Config.Collector.Trigger.InitialSoftBytes = 8 << 20;
  Config.Collector.Trigger.FullFraction = 1.1;
  return Config;
}

TEST(Collector, StartStopIsIdempotent) {
  Runtime RT(manualConfig());
  RT.collector().stop();
  RT.collector().stop(); // second stop is a no-op
  RT.collector().start();
  SUCCEED();
}

TEST(Collector, DeferredStartViaConfig) {
  RuntimeConfig Config = manualConfig();
  Config.StartCollector = false;
  Runtime RT(Config);
  // No cycles can run yet; start explicitly.
  RT.startCollector();
  auto M = RT.attachMutator();
  RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
  EXPECT_EQ(RT.collector().completedCycles(), 1u);
}

TEST(Collector, CompletedCyclesCounts) {
  Runtime RT(manualConfig());
  auto M = RT.attachMutator();
  EXPECT_EQ(RT.collector().completedCycles(), 0u);
  for (int I = 1; I <= 5; ++I) {
    RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
    EXPECT_EQ(RT.collector().completedCycles(), uint64_t(I));
  }
}

TEST(Collector, CollectSyncFromNonMutatorThread) {
  Runtime RT(manualConfig());
  // The test's main thread is not a registered mutator: collectSync works.
  RT.collector().collectSync(CycleRequest::Full);
  EXPECT_EQ(RT.collector().completedCycles(), 1u);
}

TEST(Collector, StatsResetClearsHistory) {
  Runtime RT(manualConfig());
  auto M = RT.attachMutator();
  RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
  EXPECT_EQ(RT.gcStats().Cycles.size(), 1u);
  RT.collector().resetStats();
  EXPECT_EQ(RT.gcStats().Cycles.size(), 0u);
  EXPECT_EQ(RT.gcStats().GcActiveNanos, 0u);
  // completedCycles is a lifetime counter, not part of the stats window.
  EXPECT_EQ(RT.collector().completedCycles(), 1u);
}

TEST(Collector, GcActiveMatchesCycleDurations) {
  Runtime RT(manualConfig());
  auto M = RT.attachMutator();
  for (int I = 0; I < 3; ++I)
    RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
  GcRunStats S = RT.gcStats();
  EXPECT_EQ(S.GcActiveNanos, S.totalAll(&CycleStats::DurationNanos));
}

TEST(Collector, TriggerFiresAutonomously) {
  RuntimeConfig Config = manualConfig();
  Config.Collector.Trigger.YoungBytes = 512 << 10;
  Config.Collector.PollMicros = 50;
  Runtime RT(Config);
  auto M = RT.attachMutator();
  // Allocate ~2 MB and give the poller time; at least one partial fires.
  for (int I = 0; I < 50000 && RT.collector().completedCycles() == 0; ++I) {
    M->allocate(1, 32);
    M->cooperate();
  }
  for (int Spin = 0;
       Spin < 1000 && RT.collector().completedCycles() == 0; ++Spin) {
    M->cooperate();
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  EXPECT_GT(RT.collector().completedCycles(), 0u);
}

TEST(Collector, MemoryPressureRunsFullCollectionsInsteadOfFailing) {
  RuntimeConfig Config = manualConfig();
  Config.Heap.HeapBytes = 2 << 20; // tiny heap
  Config.Collector.Trigger.InitialSoftBytes = 2 << 20;
  Runtime RT(Config);
  auto M = RT.attachMutator();
  // Allocate 8 MB of garbage through a 2 MB heap: only possible if the
  // memory-wait path reclaims continuously.
  for (int I = 0; I < 200000; ++I) {
    M->allocate(1, 24);
    M->cooperate();
  }
  EXPECT_GT(RT.collector().memoryWaits(), 0u);
  EXPECT_GT(RT.collector().completedCycles(), 0u);
}

TEST(Collector, PendingFullDominatesPartial) {
  Runtime RT(manualConfig());
  auto M = RT.attachMutator();
  // Queue both kinds before the collector can react; the coalesced request
  // must be Full (the stronger one).
  RT.collector().requestCycle(CycleRequest::Partial);
  RT.collector().requestCycle(CycleRequest::Full);
  uint64_t Before = RT.collector().completedCycles();
  while (RT.collector().completedCycles() == Before) {
    M->cooperate();
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  GcRunStats S = RT.gcStats();
  EXPECT_EQ(S.Cycles.front().Kind, CycleKind::Full);
}

TEST(Collector, LiveEstimateFeedsTrigger) {
  RuntimeConfig Config = manualConfig();
  // Leave the soft limit room to grow (it is capped at the heap size).
  Config.Heap.HeapBytes = 32 << 20;
  Runtime RT(Config);
  auto M = RT.attachMutator();
  uint64_t SoftBefore = RT.collector().trigger().softLimitBytes();
  // Grow the live set by ~2 MB, collect, and watch the soft limit follow.
  size_t Slot = M->pushRoot(NullRef);
  for (int I = 0; I < 30000; ++I) {
    ObjectRef Node = M->allocate(1, 48);
    M->writeRef(Node, 0, M->root(Slot));
    M->setRoot(Slot, Node);
  }
  RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
  EXPECT_GT(RT.collector().trigger().softLimitBytes(), SoftBefore);
  GcRunStats S = RT.gcStats();
  EXPECT_GT(S.Cycles.back().LiveEstimateBytes, 1u << 20);
  M->popRoots(M->numRoots());
}

TEST(Collector, ManyBackToBackCyclesAreStable) {
  Runtime RT(manualConfig());
  auto M = RT.attachMutator();
  ObjectRef Keep = M->allocate(1, 16);
  M->pushRoot(Keep);
  for (int I = 0; I < 50; ++I) {
    M->allocate(1, 16); // a little garbage each round
    RT.collector().collectSyncCooperating(
        I % 7 == 0 ? CycleRequest::Full : CycleRequest::Partial, *M);
    ASSERT_NE(RT.heap().loadColor(Keep), Color::Blue) << "cycle " << I;
  }
  EXPECT_EQ(RT.collector().completedCycles(), 50u);
  M->popRoots(1);
}

} // namespace

//===- tests/integration/PropertyTest.cpp -----------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
//
// Property-based testing: random object graphs are built and mutated; at
// collector-idle safe points we compute the reachable set ourselves and
// assert the two fundamental GC properties:
//
//   SOUNDNESS    — every reachable object is unreclaimed (never Blue);
//   COMPLETENESS — every unreachable object is reclaimed within two
//                  further full collections (one cycle of float is legal
//                  for an on-the-fly collector).
//
// Runs across both collectors, both promotion policies and several card
// sizes, seeds parameterized.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/GenGc.h"
#include "support/Random.h"

using namespace gengc;

namespace {

struct PropertyParam {
  CollectorChoice Choice;
  bool Aging;
  uint8_t OldestAge;
  uint32_t CardBytes;
  uint64_t Seed;
};

std::string paramName(const ::testing::TestParamInfo<PropertyParam> &Info) {
  const PropertyParam &P = Info.param;
  std::string Name =
      P.Choice == CollectorChoice::Generational ? "Gen" : "Dlg";
  if (P.Aging)
    Name += "Aging" + std::to_string(P.OldestAge);
  Name += "Card" + std::to_string(P.CardBytes);
  Name += "Seed" + std::to_string(P.Seed);
  return Name;
}

class GcPropertyTest : public ::testing::TestWithParam<PropertyParam> {
protected:
  RuntimeConfig makeConfig() const {
    const PropertyParam &P = GetParam();
    RuntimeConfig Config;
    Config.Heap.HeapBytes = 8 << 20;
    Config.Heap.CardBytes = P.CardBytes;
    Config.Choice = P.Choice;
    Config.Collector.Aging = P.Aging;
    Config.Collector.OldestAge = P.OldestAge;
    Config.Collector.Trigger.YoungBytes = 1ull << 40; // manual cycles
    Config.Collector.Trigger.InitialSoftBytes = 8 << 20;
    Config.Collector.Trigger.FullFraction = 1.1;
    return Config;
  }
};

/// Computes the set of objects reachable from the mutator's roots and the
/// global roots by walking ref slots directly.
std::set<ObjectRef> reachableSet(Runtime &RT, Mutator &M) {
  std::set<ObjectRef> Seen;
  std::vector<ObjectRef> Work;
  auto Push = [&](ObjectRef Ref) {
    if (Ref != NullRef && Seen.insert(Ref).second)
      Work.push_back(Ref);
  };
  for (size_t I = 0; I < M.numRoots(); ++I)
    Push(M.root(I));
  for (size_t I = 0; I < RT.globalRoots().size(); ++I)
    Push(RT.globalRoots().get(I));
  while (!Work.empty()) {
    ObjectRef Ref = Work.back();
    Work.pop_back();
    // A reachable-but-reclaimed object would make the header read below
    // garbage (freed cells hold free-list links); report it readably
    // instead of crashing the walk.
    if (RT.heap().loadColor(Ref) == Color::Blue) {
      ADD_FAILURE() << "dangling reference to reclaimed object " << Ref;
      continue;
    }
    for (uint32_t I = 0, E = objectRefSlots(RT.heap(), Ref); I < E; ++I)
      Push(loadRefSlot(RT.heap(), Ref, I));
  }
  return Seen;
}

TEST_P(GcPropertyTest, SoundnessAndCompletenessOnRandomGraphs) {
  Runtime RT(makeConfig());
  auto M = RT.attachMutator();
  Rng Rand(GetParam().Seed);

  constexpr unsigned Roots = 24;
  RootScope Scope(*M);
  for (unsigned I = 0; I < Roots; ++I)
    Scope.add(NullRef);

  // Every object ever allocated, so completeness can be checked.
  std::vector<ObjectRef> Everything;

  for (int Round = 0; Round < 6; ++Round) {
    // Mutate the graph randomly.
    for (int Op = 0; Op < 400; ++Op) {
      switch (Rand.nextBelow(10)) {
      case 0:
      case 1:
      case 2:
      case 3: { // allocate, rooted
        ObjectRef Obj =
            M->allocate(uint32_t(Rand.nextInRange(0, 4)),
                        uint32_t(Rand.nextInRange(0, 64)));
        Everything.push_back(Obj);
        M->setRoot(size_t(Rand.nextBelow(Roots)), Obj);
        break;
      }
      case 4:
      case 5: { // link two random live-ish objects
        if (Everything.empty())
          break;
        ObjectRef A =
            Everything[Rand.nextBelow(Everything.size())];
        ObjectRef B =
            Everything[Rand.nextBelow(Everything.size())];
        if (RT.heap().loadColor(A) != Color::Blue &&
            RT.heap().loadColor(B) != Color::Blue &&
            objectRefSlots(RT.heap(), A) > 0)
          M->writeRef(A, uint32_t(Rand.nextBelow(
                             objectRefSlots(RT.heap(), A))),
                      B);
        break;
      }
      case 6: { // sever a link
        if (Everything.empty())
          break;
        ObjectRef A =
            Everything[Rand.nextBelow(Everything.size())];
        if (RT.heap().loadColor(A) != Color::Blue &&
            objectRefSlots(RT.heap(), A) > 0)
          M->writeRef(A, uint32_t(Rand.nextBelow(
                             objectRefSlots(RT.heap(), A))),
                      NullRef);
        break;
      }
      case 7: { // clear a root
        M->setRoot(size_t(Rand.nextBelow(Roots)), NullRef);
        break;
      }
      case 8: { // global root traffic
        if (RT.globalRoots().size() < 8)
          RT.globalRoots().addRoot(NullRef);
        else if (!Everything.empty()) {
          ObjectRef A =
              Everything[Rand.nextBelow(Everything.size())];
          if (RT.heap().loadColor(A) != Color::Blue)
            RT.globalRoots().set(
                size_t(Rand.nextBelow(RT.globalRoots().size())), A);
        }
        break;
      }
      case 9: { // collection of a random kind
        RT.collector().collectSyncCooperating(
            Rand.nextBool(0.3) ? CycleRequest::Full
                               : CycleRequest::Partial,
            *M);
        break;
      }
      }
    }

    // Safe point: collector idle (collectSync… returned and no triggers
    // are armed).  SOUNDNESS.
    std::set<ObjectRef> Reachable = reachableSet(RT, *M);
    for (ObjectRef Ref : Reachable)
      ASSERT_NE(RT.heap().loadColor(Ref), Color::Blue)
          << "reachable object reclaimed in round " << Round;

    // COMPLETENESS after two full collections.
    RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
    RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
    Reachable = reachableSet(RT, *M);
    for (ObjectRef Ref : Everything) {
      if (Reachable.count(Ref))
        continue;
      EXPECT_EQ(RT.heap().loadColor(Ref), Color::Blue)
          << "unreachable object survived two full collections in round "
          << Round;
    }
    // Forget reclaimed objects (their cells may be reused).
    std::erase_if(Everything, [&](ObjectRef Ref) {
      return RT.heap().loadColor(Ref) == Color::Blue;
    });
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, GcPropertyTest,
    ::testing::Values(
        PropertyParam{CollectorChoice::Generational, false, 2, 16, 1},
        PropertyParam{CollectorChoice::Generational, false, 2, 16, 2},
        PropertyParam{CollectorChoice::Generational, false, 2, 512, 3},
        PropertyParam{CollectorChoice::Generational, false, 2, 4096, 4},
        PropertyParam{CollectorChoice::Generational, true, 2, 16, 5},
        PropertyParam{CollectorChoice::Generational, true, 4, 16, 6},
        PropertyParam{CollectorChoice::Generational, true, 6, 256, 7},
        PropertyParam{CollectorChoice::NonGenerational, false, 2, 16, 8},
        PropertyParam{CollectorChoice::NonGenerational, false, 2, 16, 9}),
    paramName);

} // namespace

//===- tests/integration/WorkloadTest.cpp - Workload engine tests ----------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
//
// Runs scaled-down versions of the synthetic benchmark profiles under both
// collectors and checks the structural expectations: the run completes, the
// checksum is collector-independent (the GC never corrupts computation),
// collections actually happen, and the per-profile generational character
// (who tenures, who dirties cards) matches the paper's characterization.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "workload/Program.h"
#include "workload/Runner.h"

using namespace gengc;
using namespace gengc::workload;

namespace {

/// Small scale so the whole suite stays fast.
constexpr double TestScale = 0.05;

class ProfileRunTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ProfileRunTest, RunsToCompletionUnderBothCollectors) {
  Profile P = profileByName(GetParam());
  P.AllocBytesPerThread = std::min<uint64_t>(P.AllocBytesPerThread,
                                             64ull << 20);
  RunResult Gen = runWorkload(P, makeConfig(CollectorChoice::Generational),
                              TestScale);
  RunResult Base = runWorkload(
      P, makeConfig(CollectorChoice::NonGenerational), TestScale);

  EXPECT_GT(Gen.AllocatedObjects, 0u);
  EXPECT_EQ(Gen.AllocatedObjects, Base.AllocatedObjects)
      << "allocation trace must not depend on the collector";
  EXPECT_EQ(Gen.Checksum, Base.Checksum)
      << "computation must not depend on the collector";
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, ProfileRunTest,
                         ::testing::Values("anagram", "mtrt", "compress",
                                           "db", "jess", "javac", "jack"),
                         [](const auto &Info) { return Info.param; });

TEST(WorkloadCharacter, AnagramTriggersManyCollections) {
  Profile P = profileByName("anagram");
  RunResult R = runWorkload(P, makeConfig(CollectorChoice::Generational),
                            0.3);
  EXPECT_GE(R.Gc.Cycles.size(), 3u)
      << "the collection-intensive profile must actually collect";
}

TEST(WorkloadCharacter, JessScansFarMoreOldObjectsThanAnagram) {
  double Scale = 0.4;
  RunResult Jess = runWorkload(profileByName("jess"),
                               makeConfig(CollectorChoice::Generational),
                               Scale);
  RunResult Anagram = runWorkload(profileByName("anagram"),
                                  makeConfig(CollectorChoice::Generational),
                                  Scale);
  double JessScan =
      Jess.Gc.mean(CycleKind::Partial, &CycleStats::OldObjectsScanned);
  double AnagramScan =
      Anagram.Gc.mean(CycleKind::Partial, &CycleStats::OldObjectsScanned);
  EXPECT_GT(JessScan, 10 * (AnagramScan + 1))
      << "jess's old-generation mutation must dominate anagram's";
}

TEST(WorkloadCharacter, MostYoungObjectsDieInAnagramPartials) {
  RunResult R = runWorkload(profileByName("anagram"),
                            makeConfig(CollectorChoice::Generational), 0.3);
  ASSERT_GT(R.Gc.count(CycleKind::Partial), 0u);
  EXPECT_GT(R.Gc.percentFreedPartialObjects(), 80.0);
}

TEST(WorkloadCharacter, MultiThreadedProfileRuns) {
  Profile P = profileByName("mtrt");
  P.Threads = 3;
  RunResult R = runWorkload(P, makeConfig(CollectorChoice::Generational),
                            TestScale);
  EXPECT_GT(R.AllocatedObjects, 0u);
}

TEST(WorkloadCharacter, CopiesRunConcurrently) {
  Profile P = profileByName("mtrt");
  RunResult R = runWorkloadCopies(
      P, makeConfig(CollectorChoice::Generational), 2, 0.02);
  EXPECT_GT(R.AllocatedObjects, 0u);
  EXPECT_GT(R.ElapsedSeconds, 0.0);
}

TEST(WorkloadCharacter, AgingConfigurationRuns) {
  Profile P = profileByName("jess");
  RuntimeConfig Config = makeConfig(CollectorChoice::Generational);
  Config.Collector.Aging = true;
  Config.Collector.OldestAge = 4;
  RunResult R = runWorkload(P, Config, TestScale);
  EXPECT_GT(R.AllocatedObjects, 0u);
}

TEST(WorkloadCharacter, DbKeepsALargeStableOldGeneration) {
  RunResult R = runWorkload(profileByName("db"),
                            makeConfig(CollectorChoice::Generational), 0.3);
  // The populated table survives partial collections: live bytes after any
  // partial stay well above the table's footprint floor (~4 MB).
  ASSERT_GT(R.Gc.count(CycleKind::Partial), 0u);
  EXPECT_GT(R.Gc.mean(CycleKind::Partial, &CycleStats::LiveBytesAfter),
            2.0 * 1024 * 1024);
}

} // namespace

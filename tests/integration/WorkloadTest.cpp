//===- tests/integration/WorkloadTest.cpp - Workload engine tests ----------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
//
// Runs scaled-down versions of the synthetic benchmark profiles under both
// collectors and checks the structural expectations: the run completes, the
// checksum is collector-independent (the GC never corrupts computation),
// collections actually happen, and the per-profile generational character
// (who tenures, who dirties cards) matches the paper's characterization.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "workload/Program.h"
#include "workload/Runner.h"

using namespace gengc;
using namespace gengc::workload;

namespace {

/// Small scale so the whole suite stays fast.
constexpr double TestScale = 0.05;

RunOptions scaled(double Scale) {
  RunOptions Options;
  Options.Scale = Scale;
  return Options;
}

class ProfileRunTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ProfileRunTest, RunsToCompletionUnderBothCollectors) {
  Profile P = profileByName(GetParam());
  P.AllocBytesPerThread = std::min<uint64_t>(P.AllocBytesPerThread,
                                             64ull << 20);
  RunResult Gen = runWorkload(P, makeConfig(CollectorChoice::Generational),
                              scaled(TestScale));
  RunResult Base = runWorkload(
      P, makeConfig(CollectorChoice::NonGenerational), scaled(TestScale));

  EXPECT_GT(Gen.AllocatedObjects, 0u);
  EXPECT_EQ(Gen.AllocatedObjects, Base.AllocatedObjects)
      << "allocation trace must not depend on the collector";
  EXPECT_EQ(Gen.Checksum, Base.Checksum)
      << "computation must not depend on the collector";
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, ProfileRunTest,
                         ::testing::Values("anagram", "mtrt", "compress",
                                           "db", "jess", "javac", "jack"),
                         [](const auto &Info) { return Info.param; });

TEST(WorkloadCharacter, AnagramTriggersManyCollections) {
  Profile P = profileByName("anagram");
  RunResult R = runWorkload(P, makeConfig(CollectorChoice::Generational),
                            scaled(0.3));
  EXPECT_GE(R.Gc.Cycles.size(), 3u)
      << "the collection-intensive profile must actually collect";
}

TEST(WorkloadCharacter, JessScansFarMoreOldObjectsThanAnagram) {
  double Scale = 0.4;
  RunResult Jess = runWorkload(profileByName("jess"),
                               makeConfig(CollectorChoice::Generational),
                               scaled(Scale));
  RunResult Anagram = runWorkload(profileByName("anagram"),
                                  makeConfig(CollectorChoice::Generational),
                                  scaled(Scale));
  double JessScan =
      Jess.Gc.mean(CycleKind::Partial, &CycleStats::OldObjectsScanned);
  double AnagramScan =
      Anagram.Gc.mean(CycleKind::Partial, &CycleStats::OldObjectsScanned);
  EXPECT_GT(JessScan, 10 * (AnagramScan + 1))
      << "jess's old-generation mutation must dominate anagram's";
}

TEST(WorkloadCharacter, MostYoungObjectsDieInAnagramPartials) {
  RunResult R = runWorkload(profileByName("anagram"),
                            makeConfig(CollectorChoice::Generational),
                            scaled(0.3));
  ASSERT_GT(R.Gc.count(CycleKind::Partial), 0u);
  EXPECT_GT(R.Gc.percentFreedPartialObjects(), 80.0);
}

TEST(WorkloadCharacter, MultiThreadedProfileRuns) {
  Profile P = profileByName("mtrt");
  P.Threads = 3;
  RunResult R = runWorkload(P, makeConfig(CollectorChoice::Generational),
                            scaled(TestScale));
  EXPECT_GT(R.AllocatedObjects, 0u);
}

TEST(WorkloadCharacter, CopiesAggregateAcrossAllCopies) {
  // Regression test: multi-copy runs used to return only copy 0's detailed
  // result.  The aggregate must carry every copy's counters and histogram
  // samples, so a 2-copy run reports ~2x the single-copy totals.
  Profile P = profileByName("mtrt");
  RunOptions One = scaled(0.02);
  One.Seed = P.Seed; // pin the seed so both shapes run the same streams
  RunOptions Two = One;
  Two.Copies = 2;
  RunResult Single =
      runWorkload(P, makeConfig(CollectorChoice::Generational), One);
  RunResult Pair =
      runWorkload(P, makeConfig(CollectorChoice::Generational), Two);

  EXPECT_GT(Pair.ElapsedSeconds, 0.0);
  // Copy 1 runs a shifted seed, so totals are close to but not exactly
  // double; well above 1.5x proves the second copy is in the aggregate.
  EXPECT_GT(Pair.AllocatedObjects, Single.AllocatedObjects * 3 / 2);
  EXPECT_GT(Pair.AllocatedBytes, Single.AllocatedBytes * 3 / 2);
  // Merged histograms: each copy records its own stall/pause samples.
  EXPECT_GE(Pair.Metrics.StallNanos.count(),
            Single.Metrics.StallNanos.count());
  // Cycle lists concatenate across copies.
  EXPECT_GE(Pair.Gc.Cycles.size(), Single.Gc.Cycles.size());
}

TEST(WorkloadCharacter, AgingConfigurationRuns) {
  Profile P = profileByName("jess");
  RuntimeConfig Config = makeConfig(CollectorChoice::Generational);
  Config.Collector.Aging = true;
  Config.Collector.OldestAge = 4;
  RunResult R = runWorkload(P, Config, scaled(TestScale));
  EXPECT_GT(R.AllocatedObjects, 0u);
}

TEST(WorkloadCharacter, DbKeepsALargeStableOldGeneration) {
  RunResult R = runWorkload(profileByName("db"),
                            makeConfig(CollectorChoice::Generational),
                            scaled(0.3));
  // The populated table survives partial collections: live bytes after any
  // partial stay well above the table's footprint floor (~4 MB).
  ASSERT_GT(R.Gc.count(CycleKind::Partial), 0u);
  EXPECT_GT(R.Gc.mean(CycleKind::Partial, &CycleStats::LiveBytesAfter),
            2.0 * 1024 * 1024);
}

} // namespace

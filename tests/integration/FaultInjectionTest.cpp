//===- tests/integration/FaultInjectionTest.cpp ----------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
//
// Fault-injected stress: with every named fault site armed — failing
// allocations, delayed handshakes, stalled worker lanes, slowed card scans
// — the runtime must keep its invariants (the heap verifier runs at every
// phase boundary) and the watchdog must detect the induced handshake
// stalls within its deadline.  Also covers the injector's own contract:
// determinism per seed, hit caps, and the disarmed fast path.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/Runtime.h"
#include "support/FaultInjector.h"

using namespace gengc;

namespace {

struct FaultInjectionTest : ::testing::Test {
  // Armed faults must never leak into other tests.
  void TearDown() override { FaultInjector::disarmAll(); }
};

TEST_F(FaultInjectionTest, SiteNames) {
  EXPECT_STREQ(faultSiteName(FaultSite::AllocFail), "alloc-fail");
  EXPECT_STREQ(faultSiteName(FaultSite::HandshakeDelay), "handshake-delay");
  EXPECT_STREQ(faultSiteName(FaultSite::WorkerLaneStall),
               "worker-lane-stall");
  EXPECT_STREQ(faultSiteName(FaultSite::CardScanDelay), "card-scan-delay");
  EXPECT_STREQ(faultSiteName(FaultSite::ThreadStall), "thread-stall");
  EXPECT_STREQ(faultSiteName(FaultSite::TraceAbort), "trace-abort");
  EXPECT_STREQ(faultSiteName(FaultSite::SweepAbort), "sweep-abort");
}

TEST_F(FaultInjectionTest, EverySiteIsNamedAndArmable) {
  // Table coverage: adding a FaultSite without extending the name table
  // (or NumFaultSites) fails here, not in a production stall report.
  for (unsigned I = 0; I < NumFaultSites; ++I) {
    FaultSite Site = FaultSite(I);
    EXPECT_STRNE(faultSiteName(Site), "invalid") << "site " << I;
    EXPECT_NE(faultSiteName(Site), nullptr) << "site " << I;
    FaultInjector::arm(Site, FaultConfig{.Probability = 1.0, .MaxHits = 1});
    EXPECT_TRUE(FaultInjector::fire(Site)) << "site " << I;
    EXPECT_EQ(FaultInjector::hitCount(Site), 1u) << "site " << I;
    FaultInjector::disarm(Site);
  }
}

TEST_F(FaultInjectionTest, DisarmedSiteNeverFires) {
  for (int I = 0; I < 1000; ++I)
    EXPECT_FALSE(FaultInjector::fire(FaultSite::AllocFail));
  EXPECT_EQ(FaultInjector::hitCount(FaultSite::AllocFail), 0u);
}

TEST_F(FaultInjectionTest, MaxHitsCapsFirings) {
  FaultInjector::arm(FaultSite::AllocFail,
                     FaultConfig{.Probability = 1.0, .MaxHits = 3});
  unsigned Fired = 0;
  for (int I = 0; I < 10; ++I)
    if (FaultInjector::fire(FaultSite::AllocFail))
      ++Fired;
  EXPECT_EQ(Fired, 3u);
  EXPECT_EQ(FaultInjector::hitCount(FaultSite::AllocFail), 3u);
}

TEST_F(FaultInjectionTest, SameSeedSameFireSequence) {
  auto drawPattern = [] {
    uint64_t Pattern = 0;
    for (int I = 0; I < 64; ++I)
      Pattern = (Pattern << 1) |
                (FaultInjector::fire(FaultSite::CardScanDelay) ? 1 : 0);
    return Pattern;
  };
  FaultInjector::arm(FaultSite::CardScanDelay,
                     FaultConfig{.Probability = 0.5}, /*Seed=*/42);
  uint64_t First = drawPattern();
  FaultInjector::arm(FaultSite::CardScanDelay,
                     FaultConfig{.Probability = 0.5}, /*Seed=*/42);
  EXPECT_EQ(drawPattern(), First);
  EXPECT_NE(First, 0u);
  EXPECT_NE(First, ~uint64_t(0));
}

TEST_F(FaultInjectionTest, WatchdogCatchesInjectedHandshakeDelays) {
  // Every handshake response sleeps 8 ms; the watchdog deadline is 2 ms,
  // so each handshake wait of a cycle must produce a stall report while
  // the cycle still completes.
  FaultInjector::arm(FaultSite::HandshakeDelay,
                     FaultConfig{.Probability = 1.0,
                                 .DelayNanos = 8'000'000});

  RuntimeConfig Config;
  Config.Heap.HeapBytes = 8 << 20;
  Config.Collector.Trigger.YoungBytes = 1ull << 40;
  Config.Collector.Trigger.InitialSoftBytes = 8 << 20;
  Config.Collector.Trigger.FullFraction = 100.0;
  Config.Collector.VerifyHeap = true;
  std::atomic<unsigned> Stalls{0};
  Config.Collector.Watchdog.DeadlineNanos = 2'000'000;
  Config.Collector.Watchdog.Policy = WatchdogPolicy::Callback;
  Config.Collector.Watchdog.OnStall = [&](const StallReport &Report) {
    ++Stalls;
    EXPECT_GE(Report.WaitedNanos, 2'000'000u);
  };
  Runtime RT(Config);

  std::atomic<bool> Ready{false}, Done{false};
  std::thread Worker([&] {
    auto M = RT.attachMutator();
    ObjectRef Keep = NullRef;
    Ready = true;
    while (!Done.load()) {
      ObjectRef Node = M->allocate(2, 8);
      M->writeRef(Node, 0, Keep);
      Keep = Node;
      M->cooperate();
    }
  });

  while (!Ready.load())
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  RT.collector().collectSync(CycleRequest::Full);
  Done = true;
  Worker.join();

  EXPECT_GE(Stalls.load(), 1u);
  EXPECT_GE(RT.collector().watchdogFires(), 1u);
  EXPECT_GT(FaultInjector::hitCount(FaultSite::HandshakeDelay), 0u);
  EXPECT_GE(RT.collector().completedCycles(), 1u)
      << "delayed, not wedged: the cycle finishes";
}

TEST_F(FaultInjectionTest, RuntimeSurvivesAllFourSitesArmed) {
  FaultInjector::arm(FaultSite::AllocFail,
                     FaultConfig{.Probability = 0.3, .MaxHits = 200});
  FaultInjector::arm(FaultSite::HandshakeDelay,
                     FaultConfig{.Probability = 0.2,
                                 .DelayNanos = 1'000'000});
  FaultInjector::arm(FaultSite::WorkerLaneStall,
                     FaultConfig{.Probability = 1.0,
                                 .DelayNanos = 1'000'000});
  FaultInjector::arm(FaultSite::CardScanDelay,
                     FaultConfig{.Probability = 0.1, .DelayNanos = 100'000,
                                 .MaxHits = 100});

  RuntimeConfig Config;
  Config.Heap.HeapBytes = 8 << 20;
  Config.Choice = CollectorChoice::Generational;
  Config.Collector.Trigger.YoungBytes = 1ull << 40;
  Config.Collector.Trigger.InitialSoftBytes = 8 << 20;
  Config.Collector.Trigger.FullFraction = 100.0;
  Config.Collector.GcThreads = 3; // exercise the worker-lane stall site
  Config.Collector.VerifyHeap = true;
  Config.Collector.Watchdog.DeadlineNanos = 500'000;
  Config.Collector.Watchdog.Policy = WatchdogPolicy::Callback;
  std::atomic<unsigned> Stalls{0};
  Config.Collector.Watchdog.OnStall = [&](const StallReport &) { ++Stalls; };
  Runtime RT(Config);

  std::atomic<unsigned> Attached{0};
  std::atomic<bool> Done{false};
  auto mutatorLoop = [&] {
    auto M = RT.attachMutator();
    ObjectRef List = NullRef;
    int Kept = 0;
    ++Attached;
    while (!Done.load()) {
      ObjectRef Node = M->allocate(2, 16);
      ASSERT_NE(Node, NullRef);
      M->writeRef(Node, 0, List);
      if (++Kept % 4 != 0)
        List = Node;
      M->cooperate();
    }
  };
  std::thread T1(mutatorLoop), T2(mutatorLoop);

  while (Attached.load() < 2)
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  for (int I = 0; I < 4; ++I) {
    RT.collector().collectSync(CycleRequest::Partial);
    RT.collector().collectSync(CycleRequest::Full);
  }
  Done = true;
  T1.join();
  T2.join();

  // Surviving with the verifier on at every phase boundary is the core
  // assertion; the sites must also have actually fired.
  EXPECT_GE(RT.collector().completedCycles(), 8u)
      << "the 8 requested cycles all completed (OOM waits may add more)";
  EXPECT_GT(FaultInjector::hitCount(FaultSite::AllocFail), 0u);
  EXPECT_GT(FaultInjector::hitCount(FaultSite::WorkerLaneStall), 0u);
}

} // namespace

//===- tests/integration/WorkloadUnitTest.cpp -------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
//
// Unit-level tests of the workload machinery itself: profile presets, the
// long-lived table, and the mutator program's bookkeeping.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "workload/Program.h"
#include "workload/Runner.h"

using namespace gengc;
using namespace gengc::workload;

namespace {

TEST(Profiles, AllPresetsResolve) {
  for (const std::string &Name : allProfileNames()) {
    Profile P = profileByName(Name);
    EXPECT_EQ(P.Name, Name);
    EXPECT_GT(P.AllocBytesPerThread, 0u);
    EXPECT_GT(P.Threads, 0u);
    EXPECT_GE(P.MaxDataBytes, P.MinDataBytes);
    EXPECT_GT(P.LongLivedSlots, 0u);
  }
  EXPECT_EQ(profileByName("raytracer").Name, "raytracer");
}

TEST(Profiles, SpecJvmListMatchesPaperOrder) {
  std::vector<std::string> Expected{"mtrt", "compress", "db",
                                    "jess", "javac",    "jack"};
  EXPECT_EQ(specJvmProfileNames(), Expected);
}

TEST(ProfilesDeathTest, UnknownNameAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(profileByName("no-such-benchmark"), "unknown workload");
}

TEST(Profiles, CharacterizationKnobsMatchThePaper) {
  // Spot checks that the calibration intent survives edits (Figures 10-12).
  EXPECT_EQ(profileByName("anagram").OldMutationRate, 0.0)
      << "anagram scans ~1 old object per partial";
  EXPECT_GT(profileByName("javac").OldMutationRate, 0.05)
      << "javac has the heaviest inter-generational load";
  EXPECT_TRUE(profileByName("db").PopulateAtStart)
      << "db's database is built up-front";
  EXPECT_FALSE(profileByName("jess").PopulateAtStart)
      << "jess tenures its working memory as it runs";
  EXPECT_LT(profileByName("jess").PromoteEvery,
            profileByName("anagram").PromoteEvery)
      << "jess tenures far more heavily than anagram";
}

struct TableTest : ::testing::Test {
  TableTest() {
    RuntimeConfig Config;
    Config.Heap.HeapBytes = 8 << 20;
    Config.Collector.Trigger.YoungBytes = 1ull << 40;
    Config.Collector.Trigger.InitialSoftBytes = 8 << 20;
    Config.Collector.Trigger.FullFraction = 1.1;
    RT = std::make_unique<Runtime>(Config);
    M = RT->attachMutator();
  }
  ~TableTest() override {
    M.reset();
    RT.reset();
  }

  std::unique_ptr<Runtime> RT;
  std::unique_ptr<Mutator> M;
};

TEST_F(TableTest, PutGetRoundTrip) {
  LongLivedTable Table(*RT, *M, 100);
  EXPECT_EQ(Table.size(), 100u);
  ObjectRef Payload = M->allocate(0, 8);
  Table.put(*M, 42, Payload);
  EXPECT_EQ(Table.get(*M, 42), Payload);
  EXPECT_EQ(Table.get(*M, 41), NullRef);
}

TEST_F(TableTest, PayloadsSurviveCollectionsViaAnchors) {
  LongLivedTable Table(*RT, *M, 512);
  std::vector<ObjectRef> Payloads;
  for (size_t I = 0; I < Table.size(); ++I) {
    ObjectRef P = M->allocate(1, 16);
    Table.put(*M, I, P);
    Payloads.push_back(P);
  }
  RT->collector().collectSyncCooperating(CycleRequest::Partial, *M);
  RT->collector().collectSyncCooperating(CycleRequest::Full, *M);
  for (size_t I = 0; I < Table.size(); ++I) {
    EXPECT_EQ(Table.get(*M, I), Payloads[I]);
    EXPECT_NE(RT->heap().loadColor(Payloads[I]), Color::Blue);
  }
}

TEST_F(TableTest, EvictedPayloadsDie) {
  LongLivedTable Table(*RT, *M, 64);
  ObjectRef Old = M->allocate(0, 8);
  Table.put(*M, 7, Old);
  RT->collector().collectSyncCooperating(CycleRequest::Partial, *M);
  ObjectRef New = M->allocate(0, 8);
  Table.put(*M, 7, New); // evicts Old
  RT->collector().collectSyncCooperating(CycleRequest::Full, *M);
  EXPECT_EQ(RT->heap().loadColor(Old), Color::Blue);
  EXPECT_NE(RT->heap().loadColor(New), Color::Blue);
}

TEST_F(TableTest, SpansMultipleLeaves) {
  LongLivedTable Table(*RT, *M, LongLivedTable::LeafSlots * 2 + 10);
  ObjectRef First = M->allocate(0, 8);
  ObjectRef Last = M->allocate(0, 8);
  Table.put(*M, 0, First);
  Table.put(*M, Table.size() - 1, Last);
  EXPECT_EQ(Table.get(*M, 0), First);
  EXPECT_EQ(Table.get(*M, Table.size() - 1), Last);
}

TEST_F(TableTest, AnchorsAreAccessible) {
  LongLivedTable Table(*RT, *M, 16);
  for (size_t I = 0; I < 16; ++I) {
    ObjectRef A = Table.anchor(I);
    EXPECT_NE(A, NullRef);
    EXPECT_EQ(objectRefSlots(RT->heap(), A), LongLivedTable::AnchorSlots);
  }
}

TEST_F(TableTest, ProgramIsDeterministicPerSeed) {
  LongLivedTable Table(*RT, *M, 1024);
  Profile P = profileByName("jess");
  P.AllocBytesPerThread = 1 << 20;
  ThreadResult A = runMutatorProgram(*RT, P, Table, 0, 1.0);
  // Same seed, same thread index: identical allocation count & checksum
  // regardless of collector interleavings.
  ThreadResult B = runMutatorProgram(*RT, P, Table, 0, 1.0);
  EXPECT_EQ(A.AllocatedObjects, B.AllocatedObjects);
  EXPECT_EQ(A.Checksum, B.Checksum);
  EXPECT_GT(A.AllocatedBytes, (1u << 20) - 1);
}

TEST_F(TableTest, ScaleShrinksTheRun) {
  LongLivedTable Table(*RT, *M, 1024);
  Profile P = profileByName("jack");
  P.AllocBytesPerThread = 4 << 20;
  ThreadResult Full = runMutatorProgram(*RT, P, Table, 0, 0.25);
  EXPECT_GE(Full.AllocatedBytes, 1u << 20);
  EXPECT_LT(Full.AllocatedBytes, (1u << 20) + (1u << 18));
}

TEST(Runner, ImprovementPercentFormula) {
  RunResult Base, Gen;
  Base.ElapsedSeconds = 2.0;
  Gen.ElapsedSeconds = 1.5;
  EXPECT_DOUBLE_EQ(improvementPercent(Base, Gen), 25.0);
  Gen.ElapsedSeconds = 2.5;
  EXPECT_DOUBLE_EQ(improvementPercent(Base, Gen), -25.0);
  Base.ElapsedSeconds = 0.0;
  EXPECT_DOUBLE_EQ(improvementPercent(Base, Gen), 0.0);
}

TEST(Runner, MakeConfigAppliesKnobs) {
  RuntimeConfig Config =
      makeConfig(CollectorChoice::NonGenerational, 2 << 20, 512);
  EXPECT_EQ(Config.Choice, CollectorChoice::NonGenerational);
  EXPECT_EQ(Config.Collector.Trigger.YoungBytes, uint64_t(2 << 20));
  EXPECT_EQ(Config.Heap.CardBytes, 512u);
  EXPECT_EQ(Config.Heap.HeapBytes, 32ull << 20) << "the paper's max heap";
}

} // namespace

//===- tests/integration/ScenarioTest.cpp - Server scenario tests ----------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
//
// The server scenario family (workload/Scenario.h), pinned:
//
//  - determinism: request count and checksum are a pure function of the
//    seed — identical across all three collectors and across repeated runs
//    with the same seed, even though timing and GC interleaving differ;
//  - SLO sanity: the latency quantiles read from the runtime's request
//    histogram are ordered (p50 <= p99 <= p999), nonzero, and the
//    histogram holds exactly one sample per completed request;
//  - the preset registry and phase arithmetic.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "workload/Scenario.h"

using namespace gengc;
using namespace gengc::workload;

namespace {

/// Small scale so the suite stays fast: a few hundred requests per run.
constexpr double TestScale = 0.02;

RunOptions scaled(double Scale) {
  RunOptions Options;
  Options.Scale = Scale;
  return Options;
}

TEST(ScenarioDeterminism, SameSeedSameResultAcrossCollectors) {
  ServerProfile SP = serverScenarioByName("mixed");
  RunResult PerChoice[3];
  const CollectorChoice Choices[] = {CollectorChoice::StopTheWorld,
                                     CollectorChoice::NonGenerational,
                                     CollectorChoice::Generational};
  for (int I = 0; I < 3; ++I)
    PerChoice[I] = runScenario(SP, makeConfig(Choices[I]), scaled(TestScale));

  EXPECT_EQ(PerChoice[0].Requests, SP.totalRequests(TestScale));
  for (int I = 1; I < 3; ++I) {
    EXPECT_EQ(PerChoice[I].Requests, PerChoice[0].Requests)
        << "request count must not depend on the collector";
    EXPECT_EQ(PerChoice[I].Checksum, PerChoice[0].Checksum)
        << "request content must not depend on the collector";
    EXPECT_EQ(PerChoice[I].AllocatedObjects, PerChoice[0].AllocatedObjects)
        << "the allocation stream must not depend on the collector";
  }
}

TEST(ScenarioDeterminism, SameSeedSameResultAcrossRuns) {
  ServerProfile SP = serverScenarioByName("churn");
  RuntimeConfig Config = makeConfig(CollectorChoice::Generational);
  RunResult First = runScenario(SP, Config, scaled(TestScale));
  RunResult Second = runScenario(SP, Config, scaled(TestScale));
  EXPECT_EQ(First.Requests, Second.Requests);
  EXPECT_EQ(First.Checksum, Second.Checksum);
  EXPECT_EQ(First.AllocatedObjects, Second.AllocatedObjects);
}

TEST(ScenarioDeterminism, DifferentSeedsDiverge) {
  ServerProfile SP = serverScenarioByName("mixed");
  RuntimeConfig Config = makeConfig(CollectorChoice::Generational);
  RunOptions A = scaled(TestScale);
  RunOptions B = scaled(TestScale);
  B.Seed = SP.Seed + 1;
  RunResult RA = runScenario(SP, Config, A);
  RunResult RB = runScenario(SP, Config, B);
  EXPECT_EQ(RA.Requests, RB.Requests) << "the schedule is seed-independent";
  EXPECT_NE(RA.Checksum, RB.Checksum)
      << "request content must follow the seed";
}

class ScenarioSloTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ScenarioSloTest, QuantilesAreOrderedAndCoverEveryRequest) {
  ServerProfile SP = serverScenarioByName(GetParam());
  RunResult R = runScenario(SP, makeConfig(CollectorChoice::Generational),
                            scaled(TestScale));

  ASSERT_GT(R.Requests, 0u);
  // Every completed request records exactly one latency sample into the
  // runtime's request histogram — the matrix reads its quantiles from
  // MetricsSnapshot, never from ad-hoc timing.
  EXPECT_EQ(R.Metrics.RequestNanos.count(), R.Requests);

  double P50 = R.Metrics.RequestNanos.quantileNanos(0.50);
  double P99 = R.Metrics.RequestNanos.quantileNanos(0.99);
  double P999 = R.Metrics.RequestNanos.quantileNanos(0.999);
  EXPECT_GT(P50, 0.0) << "open-loop latency is never exactly zero";
  EXPECT_LE(P50, P99);
  EXPECT_LE(P99, P999);
  EXPECT_GT(R.requestsPerSecond(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, ScenarioSloTest,
                         ::testing::Values("churn", "cache", "mixed",
                                           "burst"),
                         [](const auto &Info) { return Info.param; });

TEST(ScenarioPresets, RegistryIsCompleteAndPhaseMathAdds) {
  for (const std::string &Name : serverScenarioNames()) {
    ServerProfile SP = serverScenarioByName(Name);
    EXPECT_EQ(SP.Name, Name);
    EXPECT_GE(SP.Workers, 1u);
    EXPECT_FALSE(SP.Phases.empty());
    uint64_t Sum = 0;
    for (const ScenarioPhase &P : SP.Phases)
      Sum += uint64_t(double(P.Requests) * 0.5);
    EXPECT_EQ(SP.totalRequests(0.5), Sum ? Sum : 1);
  }
  // Degenerate scales still schedule one request so runs terminate.
  EXPECT_EQ(serverScenarioByName("mixed").totalRequests(0.0), 1u);
}

TEST(ScenarioPresets, BurstIsPhaseShifted) {
  ServerProfile SP = serverScenarioByName("burst");
  ASSERT_EQ(SP.Phases.size(), 3u);
  EXPECT_GT(SP.Phases[0].RateMultiplier, SP.Phases[1].RateMultiplier);
  EXPECT_GT(SP.Phases[1].RateMultiplier, SP.Phases[2].RateMultiplier);
}

} // namespace

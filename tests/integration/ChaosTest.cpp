//===- tests/integration/ChaosTest.cpp -------------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
//
// The seeded chaos campaign (DESIGN.md §19): every seed derives — through a
// SplitMix64 stream — a different subset of the seven fault sites, armed
// with seed-dependent probabilities and hit caps, and runs a deterministic
// two-mutator list workload under WatchdogPolicy::Escalate with the heap
// verifier on at every phase boundary.  The pass criterion is the strong
// one: whatever combination of swallowed handshakes, aborted traces,
// aborted sweeps, failed allocations and stalled lanes a seed produces,
// the surviving object graph must checksum identically to the fault-free
// run.  GENGC_CHAOS_SEEDS overrides the seed count (tier-1 keeps it
// bounded; sanitizer builds run fewer by default).
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "core/Runtime.h"
#include "runtime/ObjectModel.h"
#include "support/FaultInjector.h"

using namespace gengc;

namespace {

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr unsigned DefaultSeeds = 6;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr unsigned DefaultSeeds = 6;
#else
constexpr unsigned DefaultSeeds = 32;
#endif
#else
constexpr unsigned DefaultSeeds = 32;
#endif

unsigned chaosSeeds() {
  if (const char *Env = std::getenv("GENGC_CHAOS_SEEDS")) {
    long N = std::strtol(Env, nullptr, 10);
    if (N > 0)
      return unsigned(N);
  }
  return DefaultSeeds;
}

/// SplitMix64: one independent deterministic stream per campaign seed.
struct SplitMix {
  uint64_t X;
  explicit SplitMix(uint64_t Seed) : X(Seed) {}
  uint64_t next() {
    X += 0x9e3779b97f4a7c15ull;
    uint64_t Z = X;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }
  double unit() { return double(next() >> 11) / double(1ull << 53); }
};

RuntimeConfig chaosConfig() {
  RuntimeConfig Config;
  Config.Heap.HeapBytes = 8 << 20;
  Config.Choice = CollectorChoice::Generational;
  Config.Collector.Trigger.YoungBytes = 1ull << 40;
  Config.Collector.Trigger.InitialSoftBytes = 8 << 20;
  Config.Collector.Trigger.FullFraction = 100.0;
  Config.Collector.VerifyHeap = true;
  Config.Collector.Watchdog.DeadlineNanos = 1'000'000; // 1 ms
  Config.Collector.Watchdog.EscalateAfterFires = 2;
  Config.Collector.Watchdog.Policy = WatchdogPolicy::Escalate;
  Config.Collector.Watchdog.OnStall = [](const StallReport &) {};
  return Config;
}

/// One mutator's share of the workload: NODES list nodes tagged 1..NODES,
/// all kept reachable through the root stack, plus one unrooted garbage
/// node per kept node so every cycle has something real to reclaim.
/// Returns the (fault-independent) fold of (position, tag) over the list.
constexpr int NodesPerMutator = 600;

void mutatorLoop(Runtime &RT, std::atomic<bool> &Done,
                 std::atomic<unsigned> &ReadyCount,
                 std::atomic<uint64_t> &ChecksumOut) {
  auto M = RT.attachMutator();
  size_t Slot = M->pushRoot(NullRef);
  int Built = 0;
  bool Counted = false;
  while (!Done.load(std::memory_order_acquire)) {
    if (Built < NodesPerMutator) {
      ObjectRef Node = M->allocate(1, 16, uint16_t(++Built));
      M->writeRef(Node, 0, M->root(Slot));
      M->setRoot(Slot, Node);
      M->allocate(2, 32, 0xdead); // garbage for the sweeps
    } else if (!Counted) {
      Counted = true;
      ReadyCount.fetch_add(1, std::memory_order_acq_rel);
    }
    M->cooperate();
    if (Built >= NodesPerMutator)
      std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  uint64_t Sum = 0;
  uint64_t Position = 0;
  for (ObjectRef Node = M->root(Slot); Node != NullRef;
       Node = M->readRef(Node, 0))
    Sum += (++Position) * 1000003u + objectTag(RT.heap(), Node);
  ChecksumOut.fetch_add(Sum, std::memory_order_acq_rel);
  M->popRoots();
}

/// Runs the whole workload — two builder mutators, three Partial + three
/// Full synchronous collections — and returns the summed checksum.  The
/// caller arms (or does not arm) the fault table first.
uint64_t runCampaignWorkload(const RuntimeConfig &Config) {
  Runtime RT(Config);
  std::atomic<bool> Done{false};
  std::atomic<unsigned> Ready{0};
  std::atomic<uint64_t> Checksum{0};
  std::thread T1([&] { mutatorLoop(RT, Done, Ready, Checksum); });
  std::thread T2([&] { mutatorLoop(RT, Done, Ready, Checksum); });
  while (Ready.load() < 2)
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  for (int I = 0; I < 3; ++I) {
    RT.collector().collectSync(CycleRequest::Partial);
    RT.collector().collectSync(CycleRequest::Full);
  }
  // Disarm before the final certification cycles so the recovery path —
  // not an armed fault — has the last word, then let the ladder settle
  // back to a clean on-the-fly cycle.
  FaultInjector::disarmAll();
  for (int I = 0; I < 50; ++I) {
    RT.collector().collectSync(CycleRequest::Full);
    GcRunStats Stats = RT.collector().statsSnapshot();
    const CycleStats &Last = Stats.Cycles.back();
    if (!Last.Aborted && !Last.Degraded && Last.ForcedMutators == 0)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  Done = true;
  T1.join();
  T2.join();
  EXPECT_FALSE(RT.collector().statsSnapshot().Cycles.back().Degraded)
      << "the campaign must end recovered, not degraded";
  return Checksum.load();
}

/// Arms a seed-derived subset of every known fault site.  Sites whose
/// firing is a pure delay get probabilities and bounded delays; sites that
/// change control flow (AllocFail, ThreadStall, TraceAbort, SweepAbort)
/// get hit caps so every seed terminates.
void armFaultTable(uint64_t Seed) {
  SplitMix Rng(Seed);
  uint32_t Pick = uint32_t(Rng.next());
  // At least one site is always armed: fold the all-zero draw away.
  if ((Pick & 0x7f) == 0)
    Pick |= 1u << (Seed % NumFaultSites);

  if (Pick & (1u << unsigned(FaultSite::AllocFail)))
    FaultInjector::arm(FaultSite::AllocFail,
                       FaultConfig{.Probability = 0.05 + 0.2 * Rng.unit(),
                                   .MaxHits = 20 + Rng.next() % 60},
                       Rng.next());
  if (Pick & (1u << unsigned(FaultSite::HandshakeDelay)))
    FaultInjector::arm(FaultSite::HandshakeDelay,
                       FaultConfig{.Probability = 0.05 + 0.15 * Rng.unit(),
                                   .DelayNanos = 200'000 + Rng.next() % 2'000'000,
                                   .MaxHits = 40},
                       Rng.next());
  if (Pick & (1u << unsigned(FaultSite::WorkerLaneStall)))
    FaultInjector::arm(FaultSite::WorkerLaneStall,
                       FaultConfig{.Probability = 0.3,
                                   .DelayNanos = 100'000 + Rng.next() % 500'000,
                                   .MaxHits = 40},
                       Rng.next());
  if (Pick & (1u << unsigned(FaultSite::CardScanDelay)))
    FaultInjector::arm(FaultSite::CardScanDelay,
                       FaultConfig{.Probability = 0.2,
                                   .DelayNanos = 50'000 + Rng.next() % 200'000,
                                   .MaxHits = 40},
                       Rng.next());
  if (Pick & (1u << unsigned(FaultSite::ThreadStall)))
    FaultInjector::arm(FaultSite::ThreadStall,
                       FaultConfig{.Probability = 0.2 + 0.6 * Rng.unit(),
                                   .MaxHits = 4 + Rng.next() % 12},
                       Rng.next());
  if (Pick & (1u << unsigned(FaultSite::TraceAbort)))
    FaultInjector::arm(FaultSite::TraceAbort,
                       FaultConfig{.Probability = 0.25 + 0.25 * Rng.unit(),
                                   .MaxHits = 1 + Rng.next() % 3},
                       Rng.next());
  if (Pick & (1u << unsigned(FaultSite::SweepAbort)))
    FaultInjector::arm(FaultSite::SweepAbort,
                       FaultConfig{.Probability = 0.25 + 0.25 * Rng.unit(),
                                   .MaxHits = 1 + Rng.next() % 3},
                       Rng.next());
}

struct ChaosTest : ::testing::Test {
  void TearDown() override { FaultInjector::disarmAll(); }
};

TEST_F(ChaosTest, SeededCampaignKeepsChecksums) {
  RuntimeConfig Config = chaosConfig();

  // The structure the mutators keep is fault-independent, so one
  // fault-free run fixes the expected checksum for every seed.
  FaultInjector::disarmAll();
  uint64_t FaultFree = runCampaignWorkload(Config);
  ASSERT_NE(FaultFree, 0u);

  unsigned Seeds = chaosSeeds();
  for (unsigned I = 0; I < Seeds; ++I) {
    uint64_t Seed = 0xc4a05ull + I;
    SCOPED_TRACE(::testing::Message() << "campaign seed " << Seed << " ("
                                      << (I + 1) << "/" << Seeds << ")");
    armFaultTable(Seed);
    uint64_t Got = runCampaignWorkload(Config);
    ASSERT_EQ(Got, FaultFree)
        << "seed " << Seed
        << " lost or clobbered live objects (re-run with "
           "GENGC_CHAOS_SEEDS=1 and this seed index to bisect)";
  }
}

TEST_F(ChaosTest, AlternateConfigurationsSurviveOneSeed) {
  // One campaign seed against the aging and lazy-sweep variants, so the
  // abort unwind's age bumping and residue handling see chaos too.
  for (int Variant = 0; Variant < 2; ++Variant) {
    RuntimeConfig Config = chaosConfig();
    if (Variant == 0) {
      Config.Collector.Aging = true;
      Config.Collector.OldestAge = 2;
    } else {
      Config.Collector.Sweep = SweepPolicy::Lazy;
    }
    SCOPED_TRACE(::testing::Message() << "variant " << Variant);
    FaultInjector::disarmAll();
    uint64_t FaultFree = runCampaignWorkload(Config);
    armFaultTable(0xa61e + Variant);
    uint64_t Got = runCampaignWorkload(Config);
    ASSERT_EQ(Got, FaultFree);
  }
}

} // namespace

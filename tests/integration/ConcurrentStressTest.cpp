//===- tests/integration/ConcurrentStressTest.cpp - Races under load -------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
//
// Adversarial concurrency: mutator threads hammer allocation, pointer
// updates and root churn while the collector free-runs on its trigger.
// The invariant checked throughout: no reachable object is ever observed
// blue (reclaimed), and the process neither deadlocks nor corrupts the
// object graph.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <thread>

#include "core/GenGc.h"
#include "support/Random.h"

using namespace gengc;

namespace {

RuntimeConfig stressConfig(CollectorChoice Choice, bool Aging = false,
                           unsigned GcThreads = 1) {
  RuntimeConfig Config;
  Config.Heap.HeapBytes = 16ull << 20;
  Config.Heap.CardBytes = 16;
  Config.Choice = Choice;
  Config.Collector.Aging = Aging;
  Config.Collector.OldestAge = 3;
  Config.Collector.GcThreads = GcThreads;
  // Aggressive triggering: collect roughly every 256 KB of allocation so
  // many cycles overlap the mutator work.
  Config.Collector.Trigger.YoungBytes = 256 << 10;
  Config.Collector.Trigger.InitialSoftBytes = 1 << 20;
  Config.Collector.PollMicros = 50;
  return Config;
}

/// Each thread maintains a rooted ring of linked lists, constantly
/// replacing and re-linking nodes while verifying everything it can still
/// reach is unreclaimed.
void stressThread(Runtime &RT, unsigned Idx, uint64_t Ops) {
  Rng Rand(0xABCD + Idx);
  auto M = RT.attachMutator();
  constexpr unsigned Ring = 64;
  RootScope Roots(*M);
  for (unsigned I = 0; I < Ring; ++I)
    Roots.add(NullRef);

  for (uint64_t Op = 0; Op < Ops; ++Op) {
    M->cooperate();
    unsigned Slot = unsigned(Rand.nextBelow(Ring));
    switch (Rand.nextBelow(5)) {
    case 0:
    case 1: { // allocate a node chained onto a random root
      ObjectRef Node =
          M->allocate(2, uint32_t(Rand.nextInRange(8, 64)));
      M->writeRef(Node, 0, M->root(Slot));
      M->setRoot(Slot, Node);
      break;
    }
    case 2: { // drop a chain
      M->setRoot(Slot, NullRef);
      break;
    }
    case 3: { // cross-link two chains (exercises the deletion barrier)
      ObjectRef A = M->root(Slot);
      ObjectRef B = M->root(unsigned(Rand.nextBelow(Ring)));
      if (A != NullRef)
        M->writeRef(A, 1, B);
      break;
    }
    case 4: { // walk a chain, asserting reachability
      unsigned Steps = 0;
      for (ObjectRef Node = M->root(Slot);
           Node != NullRef && Steps < 100;
           Node = M->readRef(Node, 0), ++Steps)
        ASSERT_NE(RT.heap().loadColor(Node), Color::Blue)
            << "reachable object was reclaimed under load";
      break;
    }
    }
  }
}

struct StressParam {
  CollectorChoice Choice;
  bool Aging;
  unsigned GcThreads;
  const char *Name;
};

class ConcurrentStressTest : public ::testing::TestWithParam<StressParam> {};

TEST_P(ConcurrentStressTest, ReachableObjectsNeverReclaimed) {
  Runtime RT(stressConfig(GetParam().Choice, GetParam().Aging,
                          GetParam().GcThreads));
  constexpr unsigned NumThreads = 4;
  constexpr uint64_t Ops = 400000;
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&RT, T] { stressThread(RT, T, Ops); });
  for (std::thread &T : Threads)
    T.join();
  // The collector must have actually run during the stress.
  EXPECT_GT(RT.collector().completedCycles(), 0u);

  // Post-stress heap invariants: after a final full cycle with no mutator
  // load, no object may be left gray, and block metadata must be coherent
  // for every object-holding block.
  {
    auto M = RT.attachMutator();
    RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
  }
  const Heap &H = RT.heap();
  for (size_t B = 0; B < H.numBlocks(); ++B) {
    const BlockDescriptor &Desc = H.block(B);
    if (Desc.State == BlockState::SizeClass) {
      ASSERT_GT(Desc.CellBytes, 0u);
      ASSERT_GT(Desc.NumCells, 0u);
      uint64_t Base = uint64_t(B) << Heap::BlockShift;
      for (uint32_t Cell = 0; Cell < Desc.NumCells; ++Cell)
        ASSERT_NE(H.loadColor(ObjectRef(Base + uint64_t(Cell) *
                                        Desc.CellBytes)),
                  Color::Gray)
            << "gray object left behind after an idle full cycle";
    } else if (Desc.State == BlockState::LargeStart) {
      ASSERT_GT(Desc.RunBlocks, 0u);
      ASSERT_NE(H.loadColor(ObjectRef(uint64_t(B) << Heap::BlockShift)),
                Color::Gray);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Collectors, ConcurrentStressTest,
    ::testing::Values(
        StressParam{CollectorChoice::Generational, false, 1, "GenSimple"},
        StressParam{CollectorChoice::Generational, true, 1, "GenAging"},
        StressParam{CollectorChoice::NonGenerational, false, 1, "Dlg"},
        StressParam{CollectorChoice::Generational, false, 4, "GenSimpleGc4"},
        StressParam{CollectorChoice::Generational, true, 4, "GenAgingGc4"},
        StressParam{CollectorChoice::NonGenerational, false, 4, "DlgGc4"}),
    [](const auto &Info) { return std::string(Info.param.Name); });

TEST(ConcurrentStress, BlockedThreadsDoNotStallHandshakes) {
  Runtime RT(stressConfig(CollectorChoice::Generational));
  auto Blockee = RT.attachMutator();
  std::atomic<bool> Release{false};

  // One thread parks itself blocked for the whole test.
  std::thread Parked([&] {
    BlockedScope Scope(*Blockee);
    while (!Release.load(std::memory_order_acquire))
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  });

  // Another allocates enough to force multiple cycles; if blocked threads
  // stalled handshakes this would deadlock (the test would time out).
  std::thread Worker([&] { stressThread(RT, 7, 300000); });
  Worker.join();

  // And an explicit cycle with ONLY the parked thread present: its three
  // handshakes must complete on the blocked mutator's behalf.
  {
    auto Requester = RT.attachMutator();
    RT.collector().collectSyncCooperating(CycleRequest::Full, *Requester);
  }
  EXPECT_GT(RT.collector().completedCycles(), 0u);

  Release.store(true, std::memory_order_release);
  Parked.join();
}

TEST(ConcurrentStress, MutatorsMayComeAndGoMidCycle) {
  Runtime RT(stressConfig(CollectorChoice::Generational));
  std::atomic<bool> Stop{false};
  std::thread Churner([&] {
    // Threads register and deregister continuously.
    for (unsigned I = 0; !Stop.load(std::memory_order_acquire); ++I) {
      auto M = RT.attachMutator();
      for (int J = 0; J < 50; ++J) {
        M->allocate(1, 16);
        M->cooperate();
      }
    }
  });
  std::thread Worker([&] { stressThread(RT, 9, 300000); });
  Worker.join();
  Stop.store(true, std::memory_order_release);
  Churner.join();
  EXPECT_GT(RT.collector().completedCycles(), 0u);
}

} // namespace

//===- tests/obs/ObserverTest.cpp ------------------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
// The GcObserver contract: callbacks arrive once per cycle in index order,
// strictly before the synchronous requester is released, with the cycle's
// statistics already published (statsSnapshot contains the cycle), and
// removeObserver guarantees no callback after it returns.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "core/GenGc.h"

using namespace gengc;

namespace {

RuntimeConfig observerConfig() {
  RuntimeConfig Config;
  Config.Heap.HeapBytes = 8ull << 20;
  Config.Choice = CollectorChoice::Generational;
  Config.Collector.Trigger.YoungBytes = 1ull << 40; // manual cycles only
  Config.Collector.Trigger.InitialSoftBytes = 8ull << 20;
  Config.Collector.Trigger.FullFraction = 1.1;
  return Config;
}

struct RecordingObserver : GcObserver {
  std::vector<uint64_t> Indices;
  std::vector<CycleKind> Kinds;
  void onGcCycleEnd(const CycleStats &Cycle, uint64_t CycleIndex) override {
    Indices.push_back(CycleIndex);
    Kinds.push_back(Cycle.Kind);
  }
};

TEST(ObserverTest, CallbackPerCycleInIndexOrder) {
  Runtime RT(observerConfig());
  RecordingObserver Observer;
  RT.addGcObserver(Observer);

  auto M = RT.attachMutator();
  RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
  RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
  RT.collector().collectSyncCooperating(CycleRequest::Full, *M);

  ASSERT_EQ(Observer.Indices.size(), 3u);
  EXPECT_EQ(Observer.Indices, (std::vector<uint64_t>{0, 1, 2}));
  EXPECT_EQ(Observer.Kinds[0], CycleKind::Full);
  EXPECT_EQ(Observer.Kinds[1], CycleKind::Partial);
  EXPECT_EQ(Observer.Kinds[2], CycleKind::Full);

  RT.removeGcObserver(Observer);
}

TEST(ObserverTest, CallbackRunsBeforeSyncRequesterIsReleased) {
  // collectSync must not return before every observer has seen the cycle:
  // the callback count is read right after the sync call, with no other
  // synchronization.
  Runtime RT(observerConfig());
  struct CountingObserver : GcObserver {
    std::atomic<uint64_t> Calls{0};
    void onGcCycleEnd(const CycleStats &, uint64_t) override {
      Calls.fetch_add(1, std::memory_order_relaxed);
    }
  } Observer;
  RT.addGcObserver(Observer);

  auto M = RT.attachMutator();
  for (uint64_t I = 1; I <= 5; ++I) {
    RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
    EXPECT_EQ(Observer.Calls.load(std::memory_order_relaxed), I);
  }
  RT.removeGcObserver(Observer);
}

TEST(ObserverTest, StatsArePublishedWhenCallbackRuns) {
  // From inside the callback, statsSnapshot() must already contain the
  // cycle being reported (the cycle-publication ordering guarantee).
  Runtime RT(observerConfig());
  struct SnapshotObserver : GcObserver {
    Runtime *RT = nullptr;
    bool SawOwnCycle = true;
    void onGcCycleEnd(const CycleStats &Cycle, uint64_t CycleIndex) override {
      GcRunStats Snap = RT->gcStats();
      SawOwnCycle = SawOwnCycle && Snap.Cycles.size() >= CycleIndex + 1 &&
                    Snap.Cycles[size_t(CycleIndex)].DurationNanos ==
                        Cycle.DurationNanos;
    }
  } Observer;
  Observer.RT = &RT;
  RT.addGcObserver(Observer);

  auto M = RT.attachMutator();
  RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
  RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
  EXPECT_TRUE(Observer.SawOwnCycle);
  RT.removeGcObserver(Observer);
}

TEST(ObserverTest, RemoveStopsCallbacks) {
  Runtime RT(observerConfig());
  RecordingObserver Observer;
  RT.addGcObserver(Observer);

  auto M = RT.attachMutator();
  RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
  RT.removeGcObserver(Observer);
  RT.collector().collectSyncCooperating(CycleRequest::Full, *M);

  EXPECT_EQ(Observer.Indices.size(), 1u);
}

TEST(ObserverTest, MultipleObserversAllNotified) {
  Runtime RT(observerConfig());
  RecordingObserver A, B;
  RT.addGcObserver(A);
  RT.addGcObserver(B);

  auto M = RT.attachMutator();
  RT.collector().collectSyncCooperating(CycleRequest::Full, *M);

  EXPECT_EQ(A.Indices.size(), 1u);
  EXPECT_EQ(B.Indices.size(), 1u);
  RT.removeGcObserver(A);
  RT.removeGcObserver(B);
}

} // namespace

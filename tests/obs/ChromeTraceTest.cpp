//===- tests/obs/ChromeTraceTest.cpp ---------------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
// Golden tests for the two exporters: a small hand-built snapshot must
// serialize to exactly the expected Chrome trace_event JSON and line-JSON.
// The golden strings pin the external format — changing them is an
// interface break for every tool that parses recorded traces.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <sstream>

#include "obs/ObsRegistry.h"
#include "obs/TraceExport.h"
#include "support/Assert.h"

using namespace gengc;

namespace {

/// Two tracks (collector + one mutator), one span and one instant.
TraceSnapshot makeGoldenSnapshot() {
  ObsConfig Config;
  Config.Tracing = true;
  Config.RingEvents = 64;
  ObsRegistry Registry(Config, /*GcLanes=*/1);
  EventRing *Lane0 = Registry.laneRing(0);
  EventRing *Mut = Registry.addMutatorRing();
  GENGC_ASSERT(Lane0 && Mut, "tracing is on, the rings must exist");

  // 1234567 ns span: ts 1234.567 us, dur 1.5 us.
  Lane0->emit(ObsEventKind::Phase, 1234567, 1500, /*Arg0=*/2, /*Arg1=*/0);
  Mut->instant(ObsEventKind::HandshakeAck, 2000000, /*Arg0=*/1, /*Arg1=*/0);
  return TraceSnapshot::of(Registry);
}

TEST(ChromeTraceTest, GoldenChromeJson) {
  std::ostringstream Os;
  writeChromeTrace(Os, makeGoldenSnapshot());
  EXPECT_EQ(
      Os.str(),
      "{\"traceEvents\":["
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
      "\"args\":{\"name\":\"collector\"}},\n"
      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":2,"
      "\"args\":{\"name\":\"mutator-0\"}},\n"
      "{\"name\":\"Phase\",\"cat\":\"collector\",\"ph\":\"X\",\"pid\":1,"
      "\"tid\":1,\"ts\":1234.567,\"dur\":1.500,"
      "\"args\":{\"arg0\":2,\"arg1\":0}},\n"
      "{\"name\":\"HandshakeAck\",\"cat\":\"mutator\",\"ph\":\"i\","
      "\"pid\":1,\"tid\":2,\"ts\":2000.000,\"s\":\"t\","
      "\"args\":{\"arg0\":1,\"arg1\":0}}"
      "]}\n");
}

TEST(ChromeTraceTest, GoldenJsonLines) {
  std::ostringstream Os;
  writeJsonLines(Os, makeGoldenSnapshot());
  EXPECT_EQ(
      Os.str(),
      "{\"track\":\"collector\",\"src\":\"collector\",\"id\":0,"
      "\"written\":1,\"dropped\":0}\n"
      "{\"track\":\"mutator-0\",\"src\":\"mutator\",\"id\":0,"
      "\"written\":1,\"dropped\":0}\n"
      "{\"kind\":\"Phase\",\"track\":\"collector\",\"start\":1234567,"
      "\"dur\":1500,\"arg0\":2,\"arg1\":0}\n"
      "{\"kind\":\"HandshakeAck\",\"track\":\"mutator-0\",\"start\":2000000,"
      "\"dur\":0,\"arg0\":1,\"arg1\":0}\n");
}

TEST(ChromeTraceTest, EmptySnapshotIsAValidDocument) {
  std::ostringstream Os;
  writeChromeTrace(Os, TraceSnapshot());
  EXPECT_EQ(Os.str(), "{\"traceEvents\":[]}\n");
}

TEST(ChromeTraceTest, EventKindNamesAreStable) {
  // The exporters spell kinds with these exact names; tools match on them.
  EXPECT_STREQ(obsEventKindName(ObsEventKind::CycleBegin), "CycleBegin");
  EXPECT_STREQ(obsEventKindName(ObsEventKind::CycleEnd), "CycleEnd");
  EXPECT_STREQ(obsEventKindName(ObsEventKind::Phase), "Phase");
  EXPECT_STREQ(obsEventKindName(ObsEventKind::HandshakeReq), "HandshakeReq");
  EXPECT_STREQ(obsEventKindName(ObsEventKind::HandshakeAck), "HandshakeAck");
  EXPECT_STREQ(obsEventKindName(ObsEventKind::AllocStall), "AllocStall");
  EXPECT_STREQ(obsEventKindName(ObsEventKind::TraceSpan), "TraceSpan");
  EXPECT_STREQ(obsEventKindName(ObsEventKind::TraceSteal), "TraceSteal");
  EXPECT_STREQ(obsEventKindName(ObsEventKind::SweepSpan), "SweepSpan");
  EXPECT_STREQ(obsEventKindName(ObsEventKind::SweepChunk), "SweepChunk");
  EXPECT_STREQ(obsEventKindName(ObsEventKind::CardChunkOpen),
               "CardChunkOpen");
}

} // namespace

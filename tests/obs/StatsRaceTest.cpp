//===- tests/obs/StatsRaceTest.cpp -----------------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
// Regression test for torn reads of per-lane statistics during cycle
// publication: statsSnapshot() / metrics() used to copy the stats vector
// while the collector thread was still appending the cycle it had just
// finished.  The snapshot is now taken under the cycle-publication lock,
// which gives the ordering guarantee checked here — a reader that observed
// completedCycles() >= N must find at least N fully-formed cycles in any
// snapshot taken afterwards.  Run under TSan, this test is also the data-
// race detector for the publication path itself.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/GenGc.h"

using namespace gengc;

namespace {

RuntimeConfig raceConfig() {
  RuntimeConfig Config;
  Config.Heap.HeapBytes = 8ull << 20;
  Config.Choice = CollectorChoice::Generational;
  Config.Collector.GcThreads = 2;
  Config.Collector.Obs.Tracing = true; // reads race the emit sites too
  Config.Collector.Trigger.YoungBytes = 1ull << 40;
  Config.Collector.Trigger.InitialSoftBytes = 8ull << 20;
  Config.Collector.Trigger.FullFraction = 1.1;
  return Config;
}

TEST(StatsRaceTest, SnapshotsAreConsistentWhileCyclesPublish) {
  Runtime RT(raceConfig());
  constexpr uint64_t NumCycles = 40;
  std::atomic<bool> Done{false};

  // Readers hammer every published view while cycles complete.  The
  // assertions encode the publication ordering; TSan checks the rest.
  std::vector<std::thread> Readers;
  for (int R = 0; R < 3; ++R) {
    Readers.emplace_back([&] {
      while (!Done.load(std::memory_order_acquire)) {
        uint64_t SeenDone = RT.collector().completedCycles();
        GcRunStats Stats = RT.gcStats();
        ASSERT_GE(Stats.Cycles.size(), SeenDone);
        for (const CycleStats &Cycle : Stats.Cycles) {
          // A published cycle is complete: its wall time and worker count
          // are final, never half-written.
          ASSERT_GT(Cycle.GcWorkers, 0u);
          ASSERT_GT(Cycle.DurationNanos, 0u);
        }
        MetricsSnapshot Metrics = RT.metrics();
        ASSERT_GE(Metrics.cyclesTotal(), SeenDone);
        RT.traceSnapshot(); // races the lane rings; TSan-checked only
      }
    });
  }

  auto M = RT.attachMutator();
  for (uint64_t I = 0; I < NumCycles; ++I) {
    RootScope Roots(*M);
    ObjectRef Keep = Roots.add(M->allocate(1, 16));
    for (int J = 0; J < 50; ++J)
      M->writeRef(Keep, 0, M->allocate(0, 16));
    RT.collector().collectSyncCooperating(
        I % 2 ? CycleRequest::Partial : CycleRequest::Full, *M);
  }
  Done.store(true, std::memory_order_release);
  for (std::thread &T : Readers)
    T.join();

  EXPECT_EQ(RT.collector().completedCycles(), NumCycles);
  EXPECT_EQ(RT.gcStats().Cycles.size(), NumCycles);
}

TEST(StatsRaceTest, ObserverAndSyncWaiterAgreeOnCycleCount) {
  // An observer callback for cycle N and a collectSync return for cycle N
  // race only in benign directions: the observer never sees fewer cycles
  // than its own index implies, the waiter never returns before the
  // observer ran.
  Runtime RT(raceConfig());
  struct CountingObserver : GcObserver {
    std::atomic<uint64_t> Calls{0};
    void onGcCycleEnd(const CycleStats &, uint64_t CycleIndex) override {
      // Indices arrive in order, so Calls == CycleIndex here.
      ASSERT_EQ(Calls.load(std::memory_order_relaxed), CycleIndex);
      Calls.fetch_add(1, std::memory_order_relaxed);
    }
  } Observer;
  RT.addGcObserver(Observer);

  auto M = RT.attachMutator();
  for (uint64_t I = 1; I <= 10; ++I) {
    RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
    ASSERT_GE(Observer.Calls.load(std::memory_order_relaxed), I);
  }
  RT.removeGcObserver(Observer);
}

} // namespace

//===- tests/obs/ObsRuntimeTest.cpp ----------------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
// End-to-end observability through a live Runtime: with tracing enabled a
// mutator-driven workload must leave the expected event kinds in the trace
// snapshot, and the metrics snapshot must agree with the collector's own
// statistics.  With tracing off (the default), the trace is empty but the
// always-on metrics still report.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <set>

#include "core/GenGc.h"

using namespace gengc;

namespace {

RuntimeConfig runtimeConfig(bool Tracing) {
  RuntimeConfig Config;
  Config.Heap.HeapBytes = 8ull << 20;
  Config.Heap.CardBytes = 16;
  Config.Choice = CollectorChoice::Generational;
  Config.Collector.Obs.Tracing = Tracing;
  Config.Collector.Obs.RingEvents = 4096;
  Config.Collector.Trigger.YoungBytes = 1ull << 40; // manual cycles only
  Config.Collector.Trigger.InitialSoftBytes = 8ull << 20;
  Config.Collector.Trigger.FullFraction = 1.1;
  return Config;
}

/// Allocates a linked chain with some garbage, runs one full and one
/// partial cycle with the mutator cooperating.
void churn(Runtime &RT, Mutator &M) {
  RootScope Roots(M);
  size_t Head = Roots.addSlot(NullRef);
  for (int I = 0; I < 2000; ++I) {
    ObjectRef Node = M.allocate(1, 24);
    M.writeRef(Node, 0, Roots.get(Head));
    if (I % 3 == 0)
      Roots.set(Head, Node); // two of three nodes become garbage
  }
  RT.collector().collectSyncCooperating(CycleRequest::Full, M);
  for (int I = 0; I < 500; ++I)
    M.allocate(0, 16);
  RT.collector().collectSyncCooperating(CycleRequest::Partial, M);
}

TEST(ObsRuntimeTest, TracingCapturesTheCycleAnatomy) {
  Runtime RT(runtimeConfig(/*Tracing=*/true));
  auto M = RT.attachMutator();
  churn(RT, *M);

  TraceSnapshot Snap = RT.traceSnapshot();
  ASSERT_FALSE(Snap.Events.empty());
  EXPECT_GE(Snap.Tracks.size(), 2u); // collector + this mutator

  std::set<ObsEventKind> Kinds;
  for (const ObsEvent &E : Snap.Events)
    Kinds.insert(E.Kind);

  // The anatomy every traced cycle must leave behind.
  EXPECT_TRUE(Kinds.count(ObsEventKind::CycleBegin));
  EXPECT_TRUE(Kinds.count(ObsEventKind::CycleEnd));
  EXPECT_TRUE(Kinds.count(ObsEventKind::Phase));
  EXPECT_TRUE(Kinds.count(ObsEventKind::TraceSpan));
  EXPECT_TRUE(Kinds.count(ObsEventKind::SweepSpan));
  // The cooperating mutator answered soft handshakes.
  EXPECT_TRUE(Kinds.count(ObsEventKind::HandshakeReq));
  EXPECT_TRUE(Kinds.count(ObsEventKind::HandshakeAck));

  // One CycleBegin/CycleEnd pair per completed cycle.
  GcRunStats Stats = RT.gcStats();
  size_t Begins = 0, Ends = 0;
  for (const ObsEvent &E : Snap.Events) {
    Begins += E.Kind == ObsEventKind::CycleBegin;
    Ends += E.Kind == ObsEventKind::CycleEnd;
  }
  EXPECT_EQ(Begins, Stats.Cycles.size());
  EXPECT_EQ(Ends, Stats.Cycles.size());
}

TEST(ObsRuntimeTest, MetricsAgreeWithCollectorStats) {
  Runtime RT(runtimeConfig(/*Tracing=*/true));
  auto M = RT.attachMutator();
  churn(RT, *M);

  GcRunStats Stats = RT.gcStats();
  MetricsSnapshot Metrics = RT.metrics();

  EXPECT_EQ(Metrics.cyclesTotal(), Stats.Cycles.size());
  EXPECT_EQ(Metrics.count(CycleKind::Full), 1u);
  EXPECT_EQ(Metrics.count(CycleKind::Partial), 1u);
  EXPECT_EQ(Metrics.GcActiveNanos, Stats.GcActiveNanos);
  EXPECT_EQ(Metrics.HeapBytes, RT.config().Heap.HeapBytes);
  EXPECT_EQ(Metrics.LiveBytesAfterLastCycle,
            Stats.Cycles.back().LiveBytesAfter);
  EXPECT_GT(Metrics.EventsWritten, 0u);
  // The paper's collectors never park the world.
  EXPECT_EQ(Metrics.StwPauseNanos.count(), 0u);
  // Each cycle's handshakes left latency samples.
  EXPECT_GT(Metrics.HandshakeNanos.count(), 0u);
}

TEST(ObsRuntimeTest, TracingOffLeavesNoTraceButMetricsStillReport) {
  Runtime RT(runtimeConfig(/*Tracing=*/false));
  auto M = RT.attachMutator();
  churn(RT, *M);

  TraceSnapshot Snap = RT.traceSnapshot();
  EXPECT_TRUE(Snap.Tracks.empty());
  EXPECT_TRUE(Snap.Events.empty());

  MetricsSnapshot Metrics = RT.metrics();
  EXPECT_EQ(Metrics.cyclesTotal(), 2u);
  EXPECT_EQ(Metrics.EventsWritten, 0u);
  EXPECT_EQ(Metrics.EventsDropped, 0u);
  // Histograms are always on, independent of tracing.
  EXPECT_GT(Metrics.HandshakeNanos.count(), 0u);
}

TEST(ObsRuntimeTest, SweepReclaimsTheGarbageTheWorkloadMade) {
  // Sanity that the metrics carry real collection results, not zeros.
  Runtime RT(runtimeConfig(/*Tracing=*/true));
  auto M = RT.attachMutator();
  churn(RT, *M);

  MetricsSnapshot Metrics = RT.metrics();
  EXPECT_GT(Metrics.kind(CycleKind::Full).ObjectsTraced, 0u);
  EXPECT_GT(Metrics.kind(CycleKind::Full).ObjectsFreed, 0u);
  EXPECT_GT(Metrics.kind(CycleKind::Full).BytesFreed, 0u);
}

} // namespace

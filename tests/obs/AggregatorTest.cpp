//===- tests/obs/AggregatorTest.cpp ----------------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
// TraceSnapshot aggregation: track enumeration order (lanes first, then
// mutators in attach order), timestamp-sorted event merging with stable
// within-ring order, and drop accounting across rings.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "obs/ObsRegistry.h"
#include "obs/TraceExport.h"

using namespace gengc;

namespace {

ObsConfig tracingConfig(uint32_t RingEvents = 64) {
  ObsConfig Config;
  Config.Tracing = true;
  Config.RingEvents = RingEvents;
  return Config;
}

TEST(AggregatorTest, TracksEnumerateLanesThenMutatorsInAttachOrder) {
  ObsRegistry Registry(tracingConfig(), /*GcLanes=*/3);
  Registry.addMutatorRing();
  Registry.addMutatorRing();

  TraceSnapshot Snap = TraceSnapshot::of(Registry);
  ASSERT_EQ(Snap.Tracks.size(), 5u);
  EXPECT_EQ(Snap.Tracks[0].Source, ObsSource::Collector);
  EXPECT_EQ(Snap.Tracks[1].Source, ObsSource::GcLane);
  EXPECT_EQ(Snap.Tracks[1].SourceId, 1u);
  EXPECT_EQ(Snap.Tracks[2].Source, ObsSource::GcLane);
  EXPECT_EQ(Snap.Tracks[2].SourceId, 2u);
  EXPECT_EQ(Snap.Tracks[3].Source, ObsSource::Mutator);
  EXPECT_EQ(Snap.Tracks[3].SourceId, 0u);
  EXPECT_EQ(Snap.Tracks[4].Source, ObsSource::Mutator);
  EXPECT_EQ(Snap.Tracks[4].SourceId, 1u);
}

TEST(AggregatorTest, EventsMergeSortedByStartTimeAcrossRings) {
  ObsRegistry Registry(tracingConfig(), /*GcLanes=*/2);
  EventRing *Lane0 = Registry.laneRing(0);
  EventRing *Lane1 = Registry.laneRing(1);
  EventRing *Mut = Registry.addMutatorRing();
  ASSERT_NE(Lane0, nullptr);
  ASSERT_NE(Lane1, nullptr);
  ASSERT_NE(Mut, nullptr);

  // Interleaved timestamps across three rings; within a ring timestamps
  // ascend, across rings they alternate.
  Lane0->instant(ObsEventKind::CycleBegin, 10);
  Lane1->emit(ObsEventKind::TraceSpan, 20, 5);
  Mut->instant(ObsEventKind::HandshakeAck, 15);
  Lane0->instant(ObsEventKind::CycleEnd, 40);
  Mut->emit(ObsEventKind::AllocStall, 30, 2);

  TraceSnapshot Snap = TraceSnapshot::of(Registry);
  ASSERT_EQ(Snap.Events.size(), 5u);
  uint64_t Expected[] = {10, 15, 20, 30, 40};
  ObsEventKind Kinds[] = {ObsEventKind::CycleBegin, ObsEventKind::HandshakeAck,
                          ObsEventKind::TraceSpan, ObsEventKind::AllocStall,
                          ObsEventKind::CycleEnd};
  for (size_t I = 0; I < 5; ++I) {
    EXPECT_EQ(Snap.Events[I].StartNanos, Expected[I]) << "event " << I;
    EXPECT_EQ(Snap.Events[I].Kind, Kinds[I]) << "event " << I;
  }
}

TEST(AggregatorTest, EqualTimestampsKeepTrackOrderStable) {
  ObsRegistry Registry(tracingConfig(), /*GcLanes=*/2);
  EventRing *Lane0 = Registry.laneRing(0);
  EventRing *Lane1 = Registry.laneRing(1);
  ASSERT_NE(Lane0, nullptr);
  ASSERT_NE(Lane1, nullptr);
  // Same timestamp on both rings: the merge must keep lane 0 before lane 1
  // (track enumeration order), per the stable-sort contract.
  Lane1->instant(ObsEventKind::TraceSteal, 100, 7);
  Lane0->instant(ObsEventKind::Phase, 100, 1);

  TraceSnapshot Snap = TraceSnapshot::of(Registry);
  ASSERT_EQ(Snap.Events.size(), 2u);
  EXPECT_EQ(Snap.Events[0].TrackIndex, 0u);
  EXPECT_EQ(Snap.Events[0].Kind, ObsEventKind::Phase);
  EXPECT_EQ(Snap.Events[1].TrackIndex, 1u);
  EXPECT_EQ(Snap.Events[1].Kind, ObsEventKind::TraceSteal);
}

TEST(AggregatorTest, DropAccountingSpansRings) {
  ObsRegistry Registry(tracingConfig(/*RingEvents=*/64), /*GcLanes=*/1);
  EventRing *Lane0 = Registry.laneRing(0);
  EventRing *Mut = Registry.addMutatorRing();
  ASSERT_NE(Lane0, nullptr);
  ASSERT_NE(Mut, nullptr);
  for (uint64_t I = 0; I < 100; ++I) // 36 dropped
    Mut->instant(ObsEventKind::HandshakeAck, I);
  Lane0->instant(ObsEventKind::CycleBegin, 0);

  EXPECT_EQ(Registry.eventsWritten(), 101u);
  EXPECT_EQ(Registry.eventsDropped(), 36u);

  TraceSnapshot Snap = TraceSnapshot::of(Registry);
  EXPECT_EQ(Snap.eventsWritten(), 101u);
  EXPECT_EQ(Snap.eventsDropped(), 36u);
  // Retained: 64 newest mutator events + 1 lane event.
  EXPECT_EQ(Snap.Events.size(), 65u);
}

TEST(AggregatorTest, TracingOffRegistryHasNoRings) {
  ObsConfig Off; // Tracing defaults to false
  ObsRegistry Registry(Off, /*GcLanes=*/4);
  EXPECT_EQ(Registry.laneRing(0), nullptr);
  EXPECT_EQ(Registry.laneRing(3), nullptr);
  EXPECT_EQ(Registry.addMutatorRing(), nullptr);
  EXPECT_EQ(Registry.eventsWritten(), 0u);

  TraceSnapshot Snap = TraceSnapshot::of(Registry);
  EXPECT_TRUE(Snap.Tracks.empty());
  EXPECT_TRUE(Snap.Events.empty());
}

} // namespace

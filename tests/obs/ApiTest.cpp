//===- tests/obs/ApiTest.cpp -----------------------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
// The embedder-facing API surface: the GenGc.h umbrella header is the only
// include this file uses, RuntimeConfig::validate() explains rejections in
// prose, and RootScope balances the shadow stack through every exit path.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "core/GenGc.h" // the umbrella must be self-sufficient

using namespace gengc;

namespace {

//===----------------------------------------------------------------------===//
// RuntimeConfig::validate
//===----------------------------------------------------------------------===//

TEST(ConfigValidateTest, DefaultConfigIsValid) {
  EXPECT_EQ(RuntimeConfig().validate(), "");
}

TEST(ConfigValidateTest, AllShippedCollectorChoicesValidate) {
  for (CollectorChoice Choice :
       {CollectorChoice::Generational, CollectorChoice::NonGenerational,
        CollectorChoice::StopTheWorld}) {
    RuntimeConfig Config;
    Config.Choice = Choice;
    EXPECT_EQ(Config.validate(), "");
  }
}

TEST(ConfigValidateTest, HeapGeometryIsChecked) {
  RuntimeConfig Config;
  Config.Heap.HeapBytes = 4096; // below one 64 KiB block
  EXPECT_NE(Config.validate().find("at least one block"), std::string::npos);

  Config = RuntimeConfig();
  Config.Heap.HeapBytes = (1ull << 20) + 4096; // not block aligned
  EXPECT_NE(Config.validate().find("multiple of the 64 KiB block size"),
            std::string::npos);
}

TEST(ConfigValidateTest, CardGeometryIsChecked) {
  RuntimeConfig Config;
  Config.Heap.CardBytes = 48; // not a power of two
  EXPECT_NE(Config.validate().find("power of two"), std::string::npos);

  Config = RuntimeConfig();
  Config.Heap.CardBytes = 8; // below the paper's evaluated range
  EXPECT_NE(Config.validate().find("[16, 4096]"), std::string::npos);
}

TEST(ConfigValidateTest, DisablingTriggersWithHugeValuesStaysLegal) {
  // The test-suite idiom: thresholds larger than the heap mean "never
  // trigger automatically".  validate() must not reject it.
  RuntimeConfig Config;
  Config.Collector.Trigger.YoungBytes = 1ull << 40;
  Config.Collector.Trigger.FullFraction = 1.1;
  EXPECT_EQ(Config.validate(), "");

  Config.Collector.Trigger.YoungBytes = 0;
  EXPECT_NE(Config.validate().find("YoungBytes must be positive"),
            std::string::npos);

  Config = RuntimeConfig();
  Config.Collector.Trigger.FullFraction = 0.0;
  EXPECT_NE(Config.validate().find("FullFraction must be positive"),
            std::string::npos);
}

TEST(ConfigValidateTest, GcThreadBoundsAreChecked) {
  RuntimeConfig Config;
  Config.Collector.GcThreads = 0;
  EXPECT_NE(Config.validate().find("at least 1"), std::string::npos);

  Config.Collector.GcThreads = 300;
  EXPECT_NE(Config.validate().find("above 256"), std::string::npos);
}

TEST(ConfigValidateTest, GenerationalPolicyCombosAreChecked) {
  RuntimeConfig Config;
  Config.Choice = CollectorChoice::Generational;
  Config.Collector.Aging = true;
  Config.Collector.RememberedSets = true;
  EXPECT_NE(Config.validate().find("Aging with RememberedSets"),
            std::string::npos);

  // The same combination is fixed up (stripped), not rejected, for the
  // non-generational collectors — historical Runtime behavior.
  Config.Choice = CollectorChoice::NonGenerational;
  EXPECT_EQ(Config.validate(), "");
}

TEST(ConfigValidateTest, ObsRingSizeIsChecked) {
  RuntimeConfig Config;
  Config.Collector.Obs.RingEvents = 0;
  EXPECT_NE(Config.validate().find("RingEvents"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// RootScope
//===----------------------------------------------------------------------===//

RuntimeConfig scopeConfig() {
  RuntimeConfig Config;
  Config.Heap.HeapBytes = 4ull << 20;
  Config.Collector.Trigger.YoungBytes = 1ull << 40;
  Config.Collector.Trigger.InitialSoftBytes = 4ull << 20;
  Config.Collector.Trigger.FullFraction = 1.1;
  return Config;
}

TEST(RootScopeTest, PopsExactlyWhatItPushed) {
  Runtime RT(scopeConfig());
  auto M = RT.attachMutator();
  M->pushRoot(NullRef); // a root the scope must not touch
  {
    RootScope Scope(*M);
    Scope.add(M->allocate(1, 8));
    Scope.add(M->allocate(1, 8));
    EXPECT_EQ(Scope.size(), 2u);
    EXPECT_EQ(M->numRoots(), 3u);
  }
  EXPECT_EQ(M->numRoots(), 1u);
  M->popRoots(1);
}

TEST(RootScopeTest, AddReturnsTheRefItRooted) {
  Runtime RT(scopeConfig());
  auto M = RT.attachMutator();
  RootScope Scope(*M);
  ObjectRef Node = Scope.add(M->allocate(2, 16));
  EXPECT_NE(Node, NullRef);
  EXPECT_EQ(M->root(M->numRoots() - 1), Node);
}

TEST(RootScopeTest, SlotsSurviveLaterPushes) {
  Runtime RT(scopeConfig());
  auto M = RT.attachMutator();
  RootScope Scope(*M);
  size_t Slot = Scope.addSlot(NullRef);
  for (int I = 0; I < 10; ++I) // grow the stack past the slot
    Scope.add(NullRef);

  ObjectRef Node = M->allocate(1, 8);
  Scope.set(Slot, Node);
  EXPECT_EQ(Scope.get(Slot), Node);
}

TEST(RootScopeTest, ScopesNestLikeTheCallStack) {
  Runtime RT(scopeConfig());
  auto M = RT.attachMutator();
  RootScope Outer(*M);
  Outer.add(NullRef);
  {
    RootScope Inner(*M);
    Inner.add(NullRef);
    Inner.add(NullRef);
    EXPECT_EQ(Inner.size(), 2u);
    EXPECT_EQ(Outer.size(), 3u); // outer sees everything above its base
  }
  EXPECT_EQ(Outer.size(), 1u);
  EXPECT_EQ(M->numRoots(), 1u);
}

TEST(RootScopeTest, RootsKeepObjectsAliveThroughACycle) {
  Runtime RT(scopeConfig());
  auto M = RT.attachMutator();
  RootScope Scope(*M);
  ObjectRef Keep = Scope.add(M->allocate(1, 32));
  storeDataWord(RT.heap(), Keep, 0, 0xFEEDFACEu);
  for (int I = 0; I < 100; ++I)
    M->allocate(0, 64); // garbage
  RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
  EXPECT_EQ(loadDataWord(RT.heap(), Keep, 0), 0xFEEDFACEu);
}

} // namespace

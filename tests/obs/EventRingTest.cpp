//===- tests/obs/EventRingTest.cpp -----------------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
// The event ring's contract: drop-oldest overflow with exact drop
// accounting, snapshot correctness, and tear-free concurrent snapshots
// while a producer hammers the ring (the latter is the piece the TSan
// build checks for data races).
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "obs/EventRing.h"
#include "obs/Histogram.h"

using namespace gengc;

namespace {

TEST(EventRingTest, CapacityIsRoundedUpToPowerOfTwoMinimum64) {
  EXPECT_EQ(EventRing(ObsSource::Collector, 0, 1).capacity(), 64u);
  EXPECT_EQ(EventRing(ObsSource::Collector, 0, 64).capacity(), 64u);
  EXPECT_EQ(EventRing(ObsSource::Collector, 0, 65).capacity(), 128u);
  EXPECT_EQ(EventRing(ObsSource::Collector, 0, 8192).capacity(), 8192u);
}

TEST(EventRingTest, SnapshotReturnsEventsInEmissionOrder) {
  EventRing Ring(ObsSource::GcLane, 3, 64);
  for (uint64_t I = 0; I < 10; ++I)
    Ring.emit(ObsEventKind::SweepChunk, /*StartNanos=*/100 + I,
              /*DurationNanos=*/5, /*Arg0=*/I, /*Arg1=*/I * 2);

  EXPECT_EQ(Ring.written(), 10u);
  EXPECT_EQ(Ring.dropped(), 0u);

  std::vector<ObsEvent> Events;
  EXPECT_EQ(Ring.snapshot(Events), 10u);
  ASSERT_EQ(Events.size(), 10u);
  for (uint64_t I = 0; I < 10; ++I) {
    EXPECT_EQ(Events[I].Kind, ObsEventKind::SweepChunk);
    EXPECT_EQ(Events[I].StartNanos, 100 + I);
    EXPECT_EQ(Events[I].DurationNanos, 5u);
    EXPECT_EQ(Events[I].Arg0, I);
    EXPECT_EQ(Events[I].Arg1, I * 2);
  }
}

TEST(EventRingTest, OverflowDropsOldestAndCountsDrops) {
  EventRing Ring(ObsSource::Mutator, 1, 64);
  constexpr uint64_t Total = 200; // 136 past capacity
  for (uint64_t I = 0; I < Total; ++I)
    Ring.instant(ObsEventKind::HandshakeAck, I);

  EXPECT_EQ(Ring.written(), Total);
  EXPECT_EQ(Ring.dropped(), Total - Ring.capacity());

  // The snapshot holds exactly the newest `capacity` events.
  std::vector<ObsEvent> Events;
  Ring.snapshot(Events);
  ASSERT_EQ(Events.size(), Ring.capacity());
  EXPECT_EQ(Events.front().StartNanos, Total - Ring.capacity());
  EXPECT_EQ(Events.back().StartNanos, Total - 1);
}

TEST(EventRingTest, SnapshotIntoNonEmptyVectorAppends) {
  EventRing Ring(ObsSource::Collector, 0, 64);
  Ring.instant(ObsEventKind::CycleBegin, 1);
  std::vector<ObsEvent> Events(3);
  EXPECT_EQ(Ring.snapshot(Events), 1u);
  EXPECT_EQ(Events.size(), 4u);
}

TEST(EventRingTest, ConcurrentSnapshotsSeeOnlyCompleteEvents) {
  // A producer emits events whose fields all encode one value; any
  // snapshot, taken at any time, must only ever observe consistent tuples.
  // A full-speed producer can lap the ring faster than a snapshot copies
  // it (every slot then fails the seqlock re-check and is skipped — by
  // design), so the producer emits in bursts with pauses long enough for
  // snapshots to land between laps.
  EventRing Ring(ObsSource::GcLane, 1, 128);
  std::atomic<bool> Stop{false};

  std::thread Producer([&] {
    uint64_t I = 0;
    while (!Stop.load(std::memory_order_relaxed)) {
      for (int Burst = 0; Burst < 16; ++Burst, ++I)
        Ring.emit(ObsEventKind::TraceSpan, /*StartNanos=*/I,
                  /*DurationNanos=*/I * 3, /*Arg0=*/I * 7, /*Arg1=*/I * 11);
      std::this_thread::yield();
    }
  });

  // Thread startup can outlast the whole snapshot loop on a loaded
  // machine; don't start counting rounds until events exist.
  while (Ring.written() < 16)
    std::this_thread::yield();

  uint64_t Checked = 0;
  for (int Round = 0; Round < 200; ++Round) {
    std::vector<ObsEvent> Events;
    Ring.snapshot(Events);
    for (const ObsEvent &E : Events) {
      uint64_t I = E.StartNanos;
      EXPECT_EQ(E.DurationNanos, I * 3);
      EXPECT_EQ(E.Arg0, I * 7);
      EXPECT_EQ(E.Arg1, I * 11);
      ++Checked;
    }
  }
  Stop.store(true, std::memory_order_relaxed);
  Producer.join();

  // With the producer quiescent every retained slot must snapshot cleanly.
  std::vector<ObsEvent> Final;
  EXPECT_EQ(Ring.snapshot(Final),
            std::min<uint64_t>(Ring.written(), Ring.capacity()));
  EXPECT_FALSE(Final.empty());
  for (const ObsEvent &E : Final) {
    uint64_t I = E.StartNanos;
    EXPECT_EQ(E.Arg0, I * 7);
    EXPECT_EQ(E.Arg1, I * 11);
    ++Checked;
  }
  EXPECT_GT(Checked, 0u);
}

TEST(LogHistogramTest, RecordsIntoLogBucketsAndSnapshots) {
  LogHistogram H;
  H.record(0);       // bucket 0
  H.record(1);       // bucket 0
  H.record(1000);    // bucket 9 (2^9 = 512 <= 1000 < 1024)
  H.record(1000000); // bucket 19

  HistogramSnapshot S = HistogramSnapshot::of(H);
  EXPECT_EQ(S.count(), 4u);
  EXPECT_EQ(S.TotalNanos, 1001001u);
  EXPECT_EQ(S.Buckets[0], 2u);
  EXPECT_EQ(S.Buckets[9], 1u);
  EXPECT_EQ(S.Buckets[19], 1u);
  EXPECT_DOUBLE_EQ(S.meanNanos(), 1001001.0 / 4.0);
  // The median sample falls in bucket 9's range.
  EXPECT_LE(S.quantileLowNanos(0.5), 1000.0);
}

} // namespace

//===- tests/heap/HeapStressTest.cpp ----------------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
//
// Heap-manager stress beyond the unit tests: chain integrity under
// concurrent pop/push across size classes, exhaust-and-recover cycles, and
// large-run placement under fragmentation.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "heap/Heap.h"
#include "support/Random.h"

using namespace gengc;

namespace {

TEST(HeapStress, ConcurrentPopPushPreservesEveryCell) {
  HeapConfig Config;
  Config.HeapBytes = 8 << 20;
  Heap H(Config);
  constexpr unsigned Threads = 4, Rounds = 300;

  // Each thread pops chains, walks them (verifying alignment and class),
  // and pushes them back — the sweep/allocate transfer pattern.
  std::vector<std::thread> Workers;
  std::atomic<uint64_t> CellsSeen{0};
  for (unsigned W = 0; W < Threads; ++W)
    Workers.emplace_back([&, W] {
      Rng Rand(W * 7 + 1);
      for (unsigned R = 0; R < Rounds; ++R) {
        unsigned Class = unsigned(Rand.nextBelow(6));
        Heap::CellChain Chain = H.popFreeChain(Class);
        if (Chain.Count == 0)
          continue;
        unsigned Walked = 0;
        for (ObjectRef Cell = Chain.Head; Cell != NullRef;
             Cell = H.chainNext(Cell)) {
          ASSERT_EQ(Cell % GranuleBytes, 0u);
          ASSERT_EQ(H.block(H.blockIndexOf(Cell)).SizeClassIdx, Class);
          ++Walked;
        }
        ASSERT_EQ(Walked, Chain.Count);
        CellsSeen.fetch_add(Walked, std::memory_order_relaxed);
        H.pushFreeChain(Class, Chain);
      }
    });
  for (std::thread &W : Workers)
    W.join();
  EXPECT_GT(CellsSeen.load(), 0u);
  EXPECT_EQ(H.usedBytes(), 0u) << "every pop was matched by a push";
}

TEST(HeapStress, ExhaustAndRecoverRepeatedly) {
  HeapConfig Config;
  Config.HeapBytes = 4 * Heap::BlockBytes;
  Heap H(Config);
  unsigned Class = sizeClassFor(64);
  for (int Round = 0; Round < 10; ++Round) {
    // Drain the whole heap into chains.
    std::vector<Heap::CellChain> Held;
    for (;;) {
      Heap::CellChain Chain = H.popFreeChain(Class);
      if (Chain.Count == 0)
        break;
      Held.push_back(Chain);
    }
    EXPECT_GT(Held.size(), 0u);
    EXPECT_EQ(H.popFreeChain(Class).Count, 0u) << "exhausted";
    // Return everything; the next round must see the same capacity.
    uint64_t Returned = 0;
    for (const Heap::CellChain &Chain : Held) {
      Returned += Chain.Count;
      H.pushFreeChain(Class, Chain);
    }
    static uint64_t FirstRound = 0;
    if (Round == 0)
      FirstRound = Returned;
    EXPECT_EQ(Returned, FirstRound) << "capacity drifted across rounds";
  }
}

TEST(HeapStress, MixedClassesDoNotInterfere) {
  HeapConfig Config;
  Config.HeapBytes = 8 << 20;
  Heap H(Config);
  std::set<ObjectRef> All;
  Rng Rand(99);
  std::vector<std::pair<unsigned, Heap::CellChain>> Held;
  for (int I = 0; I < 200; ++I) {
    unsigned Class = unsigned(Rand.nextBelow(NumSizeClasses));
    Heap::CellChain Chain = H.popFreeChain(Class);
    if (Chain.Count == 0)
      continue;
    for (ObjectRef Cell = Chain.Head; Cell != NullRef;
         Cell = H.chainNext(Cell)) {
      auto [It, Fresh] = All.insert(Cell);
      ASSERT_TRUE(Fresh) << "cell handed out twice across classes";
      // Cell spans must not overlap the next cell of its class.
      ASSERT_EQ(H.storageBytesOf(Cell), sizeClassBytes(Class));
    }
    Held.push_back({Class, Chain});
  }
  for (auto &[Class, Chain] : Held)
    H.pushFreeChain(Class, Chain);
}

TEST(HeapStress, LargeRunsUnderFragmentation) {
  HeapConfig Config;
  Config.HeapBytes = 16 * Heap::BlockBytes;
  Heap H(Config);
  // Fragment: carve small-object blocks at alternating positions by
  // allocating large runs and freeing every other one.
  std::vector<ObjectRef> Runs;
  for (int I = 0; I < 7; ++I) {
    ObjectRef Run = H.allocateLarge(uint32_t(2 * Heap::BlockBytes) - 64);
    ASSERT_NE(Run, NullRef);
    Runs.push_back(Run);
  }
  for (size_t I = 0; I < Runs.size(); I += 2)
    H.freeLargeRun(H.blockIndexOf(Runs[I]));
  // 2-block holes exist; a 2-block run must fit, a 4-block must not
  // (holes are separated by live runs).
  EXPECT_NE(H.allocateLarge(uint32_t(2 * Heap::BlockBytes) - 64), NullRef);
  EXPECT_EQ(H.allocateLarge(uint32_t(4 * Heap::BlockBytes) - 64), NullRef);
  // Freeing the separators heals the space.
  for (size_t I = 1; I < Runs.size(); I += 2)
    H.freeLargeRun(H.blockIndexOf(Runs[I]));
  EXPECT_NE(H.allocateLarge(uint32_t(4 * Heap::BlockBytes) - 64), NullRef);
}

TEST(HeapStress, ChainCellsConfigBoundsChainLength) {
  HeapConfig Config;
  Config.HeapBytes = 4 << 20;
  Config.ChainCells = 32;
  Heap H(Config);
  for (int I = 0; I < 50; ++I) {
    Heap::CellChain Chain = H.popFreeChain(0);
    ASSERT_LE(Chain.Count, 32u);
    ASSERT_GT(Chain.Count, 0u);
  }
}

} // namespace

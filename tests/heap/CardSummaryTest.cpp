//===- tests/heap/CardSummaryTest.cpp --------------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
// The two-level card table's load-bearing invariant: any dirty card implies
// its summary byte is set.  Every consumer of the summary index (the
// sharded card scan's work generator) relies on it — a dirty card under a
// clean summary byte would be an inter-generational pointer the collector
// never scans.  The suite checks the invariant after write-barrier storms,
// after the three-step clear protocol, across the collector's color toggle,
// and after the range clears issued when large runs are reclaimed.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <vector>

#include "core/Runtime.h"
#include "heap/CardTable.h"
#include "support/Random.h"

using namespace gengc;

namespace {

constexpr uint64_t HeapBytes = 1 << 20;

/// EXPECTs the invariant "dirty card => set summary byte" over the whole
/// table.
void expectSummaryCoversDirty(const CardTable &T) {
  for (size_t Card = 0; Card < T.numCards(); ++Card) {
    if (T.isDirty(Card)) {
      EXPECT_TRUE(T.isSummaryDirty(T.summaryChunkFor(Card)))
          << "dirty card " << Card << " under clean summary chunk "
          << T.summaryChunkFor(Card);
    }
  }
}

TEST(CardSummary, GeometryPerCardSize) {
  for (uint32_t Card = CardTable::MinCardBytes;
       Card <= CardTable::MaxCardBytes; Card *= 2) {
    CardTable T(HeapBytes, Card);
    size_t Cards = T.numCards();
    EXPECT_EQ(T.numSummaryChunks(),
              (Cards + CardTable::SummaryCards - 1) / CardTable::SummaryCards);
    // Chunk card ranges tile [0, numCards) exactly.
    size_t Covered = 0;
    for (size_t Chunk = 0; Chunk < T.numSummaryChunks(); ++Chunk) {
      EXPECT_EQ(T.chunkCardBegin(Chunk), Covered);
      EXPECT_GT(T.chunkCardEnd(Chunk), T.chunkCardBegin(Chunk));
      Covered = T.chunkCardEnd(Chunk);
    }
    EXPECT_EQ(Covered, Cards);
    EXPECT_EQ(T.summaryChunkFor(Cards - 1), T.numSummaryChunks() - 1);
  }
}

TEST(CardSummary, MarkSetsBothLevels) {
  CardTable T(HeapBytes, 16);
  T.markCard(100); // card 6, chunk 0
  EXPECT_TRUE(T.isDirty(6));
  EXPECT_TRUE(T.isSummaryDirty(0));
  EXPECT_FALSE(T.isSummaryDirty(1));
  T.markCardIndex(64 * 3 + 17); // chunk 3
  EXPECT_TRUE(T.isSummaryDirty(3));
  EXPECT_FALSE(T.isSummaryDirty(2));
}

TEST(CardSummary, InvariantAfterBarrierStorm) {
  CardTable T(HeapBytes, 16);
  Rng Rand(0xCA7D5);
  for (int I = 0; I < 20000; ++I)
    T.markCard(Rand.nextBelow(HeapBytes));
  expectSummaryCoversDirty(T);
}

TEST(CardSummary, InvariantAfterThreeStepClear) {
  CardTable T(HeapBytes, 16);
  Rng Rand(0x5EED);
  for (int I = 0; I < 5000; ++I)
    T.markCard(Rand.nextBelow(HeapBytes));

  // Run the collector's chunk protocol over the whole table: clear the
  // summary, walk the chunk's cards with the per-card three-step clear,
  // re-marking every other dirty card (as if it still guarded an
  // inter-generational pointer).
  for (size_t Chunk = 0; Chunk < T.numSummaryChunks(); ++Chunk) {
    T.clearSummaryAcquire(Chunk);
    bool Remark = false;
    for (size_t Card = T.chunkCardBegin(Chunk); Card < T.chunkCardEnd(Chunk);
         ++Card) {
      if (!T.isDirty(Card))
        continue;
      T.clearCard(Card);
      if ((Remark = !Remark))
        T.markCardIndex(Card);
    }
  }
  expectSummaryCoversDirty(T);
  EXPECT_GT(T.countDirty(), 0u); // the re-marks survived
}

TEST(CardSummary, ClearAllClearsBothLevels) {
  CardTable T(HeapBytes, 16);
  for (uint64_t Offset = 0; Offset < HeapBytes; Offset += 999)
    T.markCard(Offset);
  T.clearAll();
  EXPECT_EQ(T.countDirty(), 0u);
  for (size_t Chunk = 0; Chunk < T.numSummaryChunks(); ++Chunk)
    EXPECT_FALSE(T.isSummaryDirty(Chunk));
}

TEST(CardSummary, RangeClearScrubsCardsButKeepsSummaries) {
  CardTable T(HeapBytes, 16);
  uint64_t Begin = 64 << 10, End = 128 << 10;
  T.markCard(Begin - 1);
  T.markCard(Begin);
  T.markCard(End - 1);
  T.markCard(End);
  T.clearCardsOverRange(Begin, End);
  EXPECT_TRUE(T.isDirty(T.cardIndexFor(Begin - 1)));
  EXPECT_FALSE(T.isDirty(T.cardIndexFor(Begin)));
  EXPECT_FALSE(T.isDirty(T.cardIndexFor(End - 1)));
  EXPECT_TRUE(T.isDirty(T.cardIndexFor(End)));
  // Summaries are left set (a chunk may straddle the range boundary and
  // guard a neighbor's cards); the invariant direction that matters holds.
  expectSummaryCoversDirty(T);
}

TEST(CardSummary, DirtyChunkWalkFindsAllAscending) {
  CardTable T(HeapBytes, 16);
  std::vector<size_t> Expected;
  for (size_t Chunk : {size_t(0), size_t(7), size_t(8), size_t(63),
                       size_t(200), T.numSummaryChunks() - 1}) {
    T.markCardIndex(T.chunkCardBegin(Chunk));
    Expected.push_back(Chunk);
  }
  std::vector<size_t> Found;
  T.forEachDirtySummaryChunkInRange(0, T.numSummaryChunks(),
                                    [&](size_t Chunk) { Found.push_back(Chunk); });
  EXPECT_EQ(Found, Expected);
}

/// The invariant across live collection cycles (including the color toggle
/// and the in-cycle card clears), exercised through the real write barrier
/// in both barrier modes.
class CardSummaryCycleTest : public ::testing::TestWithParam<bool> {};

TEST_P(CardSummaryCycleTest, InvariantAcrossColorToggle) {
  RuntimeConfig Config;
  Config.Heap.HeapBytes = 8ull << 20;
  Config.Heap.CardBytes = 16;
  Config.Choice = CollectorChoice::Generational;
  Config.Collector.Aging = GetParam();
  Config.Collector.OldestAge = 3;
  Config.Collector.Trigger.YoungBytes = 1ull << 40; // only explicit cycles
  Config.Collector.Trigger.InitialSoftBytes = 4ull << 20;
  Config.Collector.Trigger.FullFraction = 1.1;
  Runtime RT(Config);
  auto M = RT.attachMutator();
  Rng R(0x70661E);

  constexpr unsigned Ring = 32;
  for (unsigned I = 0; I < Ring; ++I)
    M->pushRoot(NullRef);
  for (int Cycle = 0; Cycle < 6; ++Cycle) {
    for (int Op = 0; Op < 4000; ++Op) {
      unsigned Slot = unsigned(R.nextBelow(Ring));
      ObjectRef Node = M->allocate(2, uint32_t(R.nextInRange(8, 64)));
      M->writeRef(Node, 0, M->root(Slot));
      M->setRoot(Slot, Node);
      ObjectRef A = M->root(unsigned(R.nextBelow(Ring)));
      if (A != NullRef)
        M->writeRef(A, 1, M->root(Slot));
    }
    RT.collector().collectSyncCooperating(
        Cycle % 2 ? CycleRequest::Partial : CycleRequest::Full, *M);
    expectSummaryCoversDirty(RT.heap().cards());
  }
  M->popRoots(M->numRoots());
}

INSTANTIATE_TEST_SUITE_P(Barriers, CardSummaryCycleTest,
                         ::testing::Bool(),
                         [](const auto &Info) {
                           return Info.param ? "Aging" : "Simple";
                         });

} // namespace

//===- tests/heap/ColorTest.cpp --------------------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "heap/Color.h"

using namespace gengc;

namespace {

TEST(Color, BlueIsZeroForZeroInitializedTables) {
  EXPECT_EQ(uint8_t(Color::Blue), 0);
}

TEST(Color, NamesAreDistinctAndStable) {
  EXPECT_STREQ(colorName(Color::Blue), "blue");
  EXPECT_STREQ(colorName(Color::White), "white");
  EXPECT_STREQ(colorName(Color::Yellow), "yellow");
  EXPECT_STREQ(colorName(Color::Gray), "gray");
  EXPECT_STREQ(colorName(Color::Black), "black");
}

TEST(Color, ToggleColorsAreWhiteAndYellow) {
  EXPECT_TRUE(isToggleColor(Color::White));
  EXPECT_TRUE(isToggleColor(Color::Yellow));
  EXPECT_FALSE(isToggleColor(Color::Blue));
  EXPECT_FALSE(isToggleColor(Color::Gray));
  EXPECT_FALSE(isToggleColor(Color::Black));
}

TEST(Color, OtherToggleColorSwaps) {
  EXPECT_EQ(otherToggleColor(Color::White), Color::Yellow);
  EXPECT_EQ(otherToggleColor(Color::Yellow), Color::White);
}

TEST(Color, ToggleIsAnInvolution) {
  for (Color C : {Color::White, Color::Yellow})
    EXPECT_EQ(otherToggleColor(otherToggleColor(C)), C);
}

} // namespace

//===- tests/heap/PageTouchTest.cpp ----------------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "heap/PageTouch.h"

using namespace gengc;

namespace {

PageTouchTracker makeTracker() {
  PageTouchTracker T;
  T.registerRegion(Region::Arena, 1 << 20);
  T.registerRegion(Region::ColorTable, 1 << 16);
  T.registerRegion(Region::CardTable, 1 << 16);
  T.registerRegion(Region::AgeTable, 1 << 16);
  T.setEnabled(true);
  return T;
}

TEST(PageTouch, StartsEmpty) {
  PageTouchTracker T = makeTracker();
  EXPECT_EQ(T.countTouched(), 0u);
}

TEST(PageTouch, SingleTouchCountsOnePage) {
  PageTouchTracker T = makeTracker();
  T.touch(Region::Arena, 100);
  EXPECT_EQ(T.countTouched(), 1u);
}

TEST(PageTouch, SamePageTouchedOnceCountsOnce) {
  PageTouchTracker T = makeTracker();
  T.touch(Region::Arena, 0);
  T.touch(Region::Arena, 4095);
  EXPECT_EQ(T.countTouched(), 1u);
  T.touch(Region::Arena, 4096);
  EXPECT_EQ(T.countTouched(), 2u);
}

TEST(PageTouch, RegionsAreDisjoint) {
  PageTouchTracker T = makeTracker();
  T.touch(Region::Arena, 0);
  T.touch(Region::ColorTable, 0);
  T.touch(Region::CardTable, 0);
  T.touch(Region::AgeTable, 0);
  EXPECT_EQ(T.countTouched(), 4u);
}

TEST(PageTouch, TouchRangeSpansPages) {
  PageTouchTracker T = makeTracker();
  T.touchRange(Region::Arena, 4000, 200); // crosses a page boundary
  EXPECT_EQ(T.countTouched(), 2u);
  T.touchRange(Region::Arena, 8192, 4096 * 3); // exactly 3 pages
  EXPECT_EQ(T.countTouched(), 5u);
}

TEST(PageTouch, TouchRangeZeroLengthIsNoop) {
  PageTouchTracker T = makeTracker();
  T.touchRange(Region::Arena, 123, 0);
  EXPECT_EQ(T.countTouched(), 0u);
}

TEST(PageTouch, DisabledTrackerIgnoresTouches) {
  PageTouchTracker T = makeTracker();
  T.setEnabled(false);
  T.touch(Region::Arena, 0);
  T.touchRange(Region::ColorTable, 0, 1 << 16);
  EXPECT_EQ(T.countTouched(), 0u);
}

TEST(PageTouch, ResetClearsBetweenCycles) {
  PageTouchTracker T = makeTracker();
  T.touchRange(Region::Arena, 0, 1 << 20);
  EXPECT_EQ(T.countTouched(), 256u);
  T.reset();
  EXPECT_EQ(T.countTouched(), 0u);
  T.touch(Region::Arena, 0);
  EXPECT_EQ(T.countTouched(), 1u);
}

TEST(PageTouch, WholeRegionTouchMatchesRegionSize) {
  PageTouchTracker T = makeTracker();
  T.touchRange(Region::ColorTable, 0, 1 << 16);
  EXPECT_EQ(T.countTouched(), uint64_t((1 << 16) / 4096));
}

} // namespace

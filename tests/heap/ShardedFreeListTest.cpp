//===- tests/heap/ShardedFreeListTest.cpp ----------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
// The sharded central free lists: home-shard hashing, ring-order stealing
// with the bounded-steal budget, carve fallback when every shard is dry,
// chain conservation across shards, and a many-mutator churn stress that
// doubles as the TSan/ASan gate for the lock-free block stack.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "core/GenGc.h"
#include "heap/Heap.h"

using namespace gengc;

namespace {

HeapConfig shardedConfig(uint32_t Shards, uint64_t HeapBytes = 4 << 20) {
  HeapConfig Config;
  Config.HeapBytes = HeapBytes;
  Config.AllocShards = Shards;
  return Config;
}

TEST(ShardedFreeList, HomeShardHashIsStableAndInRange) {
  Heap H(shardedConfig(8));
  ASSERT_EQ(H.allocShards(), 8u);
  std::set<unsigned> Hit;
  for (uint64_t Id = 0; Id < 64; ++Id) {
    unsigned Shard = H.homeShardFor(Id);
    EXPECT_LT(Shard, 8u);
    EXPECT_EQ(Shard, H.homeShardFor(Id)) << "hash not stable for id " << Id;
    Hit.insert(Shard);
  }
  // Fibonacci hashing spreads consecutive registration ids: 64 ids must not
  // pile onto a couple of shards.
  EXPECT_GE(Hit.size(), 6u);
}

TEST(ShardedFreeList, SingleShardDegeneratesToShardZero) {
  Heap H(shardedConfig(1));
  EXPECT_EQ(H.allocShards(), 1u);
  for (uint64_t Id = 0; Id < 16; ++Id)
    EXPECT_EQ(H.homeShardFor(Id), 0u);
}

TEST(ShardedFreeList, CarveFallbackReportsAndFillsHomeShard) {
  Heap H(shardedConfig(4));
  Heap::CellChain Chain;
  Heap::RefillStats Stats;
  // Empty heap: the refill must carve, into the home shard, and say so.
  unsigned Got = H.popFreeChains(/*ClassIdx=*/0, /*HomeShard=*/2, 1, &Chain,
                                 &Stats);
  ASSERT_EQ(Got, 1u);
  EXPECT_GT(Chain.Count, 0u);
  EXPECT_TRUE(Stats.Carved);
  EXPECT_EQ(Stats.StolenFrom, -1);
  EXPECT_EQ(H.carveFallbackCount(), 1u);
  // The carve deposited the block's remaining chains in shard 2: the next
  // refill of that shard is served locally, no steal, no carve.
  Heap::CellChain Next;
  Heap::RefillStats Stats2;
  ASSERT_EQ(H.popFreeChains(0, 2, 1, &Next, &Stats2), 1u);
  EXPECT_FALSE(Stats2.Carved);
  EXPECT_EQ(Stats2.StolenFrom, -1);
  EXPECT_EQ(Stats2.ShardsProbed, 0u);
  // The block the chains came from records shard 2 as its home.
  EXPECT_EQ(H.block(H.blockIndexOf(Chain.Head)).HomeShard, 2u);
}

/// Drains every chain of \p ClassIdx out of \p H (all shards AND all free
/// blocks, which would otherwise be carved to refill a dry shard), so a test
/// can stage an exact inventory with pushFreeChain.
std::vector<Heap::CellChain> drainClass(Heap &H, unsigned ClassIdx) {
  std::vector<Heap::CellChain> Held;
  for (;;) {
    Heap::CellChain C = H.popFreeChain(ClassIdx, 0);
    if (C.Count == 0)
      break;
    Held.push_back(C);
  }
  return Held;
}

TEST(ShardedFreeList, StealProbesNeighborsInRingOrder) {
  Heap H(shardedConfig(4));
  std::vector<Heap::CellChain> Held = drainClass(H, 1);
  ASSERT_GE(Held.size(), 1u);
  // Exactly one chain findable, parked in shard 2.
  Heap::CellChain Seed = Held.back();
  Held.pop_back();
  H.pushFreeChain(1, Seed, /*HomeShard=*/2);

  // A refill homed at 0 probes 1 (empty) then 2 (hit): ring order.
  Heap::CellChain Stolen;
  Heap::RefillStats Stats;
  ASSERT_EQ(H.popFreeChains(1, 0, 1, &Stolen, &Stats), 1u);
  EXPECT_EQ(Stats.StolenFrom, 2);
  EXPECT_EQ(Stats.ShardsProbed, 2u);
  EXPECT_FALSE(Stats.Carved);
  EXPECT_EQ(Stolen.Head, Seed.Head);
  EXPECT_GE(H.refillStealCount(), 1u);
}

TEST(ShardedFreeList, StealIsBoundedToHalfTheVictim) {
  Heap H(shardedConfig(4));
  std::vector<Heap::CellChain> Held = drainClass(H, 2);
  ASSERT_GE(Held.size(), 4u);
  // Exactly 4 chains findable, all in shard 3.
  for (int I = 0; I < 4; ++I) {
    H.pushFreeChain(2, Held.back(), /*HomeShard=*/3);
    Held.pop_back();
  }

  // A dry home shard asking for everything gets at most half the victim's
  // inventory: ceil(4/2) == 2, even though 8 were requested.
  Heap::CellChain Out[8];
  Heap::RefillStats Stats;
  unsigned Got = H.popFreeChains(2, 0, 8, Out, &Stats);
  EXPECT_EQ(Got, 2u);
  EXPECT_EQ(Stats.StolenFrom, 3);
  EXPECT_FALSE(Stats.Carved);
}

TEST(ShardedFreeList, BatchedPopTakesUpToMaxFromHomeShard) {
  Heap H(shardedConfig(2));
  // One carve parks several chains in shard 1 (64-byte cells: 1024 cells,
  // ChainCells=256 -> 4 chains per block).
  unsigned Class = sizeClassFor(64);
  Heap::CellChain First = H.popFreeChain(Class, 1);
  Heap::CellChain Out[3];
  Heap::RefillStats Stats;
  unsigned Got = H.popFreeChains(Class, 1, 3, Out, &Stats);
  EXPECT_EQ(Got, 3u);
  EXPECT_FALSE(Stats.Carved);
  EXPECT_EQ(Stats.StolenFrom, -1);
  H.pushFreeChain(Class, First, 1);
  for (unsigned I = 0; I < Got; ++I)
    H.pushFreeChain(Class, Out[I], 1);
}

TEST(ShardedFreeList, CellsAreConservedAcrossShardRoundTrips) {
  Heap H(shardedConfig(4, /*HeapBytes=*/1 << 20)); // 16 blocks, 15 free
  unsigned Class = sizeClassFor(128);

  // Drain the whole heap for one class, spreading requests over shards.
  std::vector<Heap::CellChain> Taken;
  uint64_t Cells = 0;
  for (unsigned Home = 0;; Home = (Home + 1) & 3) {
    Heap::CellChain C = H.popFreeChain(Class, Home);
    if (C.Count == 0)
      break;
    Cells += C.Count;
    Taken.push_back(C);
  }
  ASSERT_GT(Cells, 0u);
  EXPECT_EQ(H.freeBlockCount(), 0u);

  // Return everything, deliberately to the "wrong" shards.
  for (size_t I = 0; I < Taken.size(); ++I)
    H.pushFreeChain(Class, Taken[I], unsigned((I * 3) & 3));
  EXPECT_EQ(H.usedBytes(), 0u);

  // Every cell is findable again, exactly once, from any home shard.
  std::set<ObjectRef> Seen;
  uint64_t Recovered = 0;
  for (;;) {
    Heap::CellChain C = H.popFreeChain(Class, 1);
    if (C.Count == 0)
      break;
    Recovered += C.Count;
    for (ObjectRef Cell = C.Head; Cell != NullRef; Cell = H.chainNext(Cell))
      EXPECT_TRUE(Seen.insert(Cell).second) << "cell handed out twice";
  }
  EXPECT_EQ(Recovered, Cells);
  EXPECT_EQ(Seen.size(), Cells);
}

TEST(ShardedFreeList, ForEachFreeChainSeesEveryShard) {
  Heap H(shardedConfig(4));
  unsigned Class = sizeClassFor(64);
  Heap::CellChain A = H.popFreeChain(Class, 0);
  Heap::CellChain B = H.popFreeChain(Class, 3);
  H.pushFreeChain(Class, A, 0);
  H.pushFreeChain(Class, B, 3);
  std::set<ObjectRef> Heads;
  H.forEachFreeChain(
      [&](unsigned ClassIdx, unsigned, const Heap::CellChain &Chain) {
        if (ClassIdx == Class)
          Heads.insert(Chain.Head);
      });
  EXPECT_TRUE(Heads.count(A.Head));
  EXPECT_TRUE(Heads.count(B.Head));
}

TEST(ShardedFreeList, SingleShardPopSequenceIsDeterministic) {
  // With AllocShards=1 the sharded path must reduce to the historical
  // single-central-list behavior: two identical heaps hand out identical
  // cell sequences (the DeterminismTest contract at the heap level).
  std::vector<ObjectRef> Runs[2];
  for (int Run = 0; Run < 2; ++Run) {
    Heap H(shardedConfig(1, 1 << 20));
    for (int I = 0; I < 32; ++I) {
      Heap::CellChain C = H.popFreeChain(I % NumSizeClasses, 0);
      Runs[Run].push_back(C.Head);
    }
  }
  EXPECT_EQ(Runs[0], Runs[1]);
}

TEST(ShardedFreeList, ConfigRejectsBadShardCounts) {
  RuntimeConfig Config;
  Config.Heap.AllocShards = 3;
  EXPECT_NE(Config.validate(), "");
  Config.Heap.AllocShards = 512;
  EXPECT_NE(Config.validate(), "");
  Config.Heap.AllocShards = 16;
  EXPECT_EQ(Config.validate(), "");
  Config.Heap.RefillBatchMax = 0;
  EXPECT_NE(Config.validate(), "");
}

//===----------------------------------------------------------------------===//
// Many-mutator churn stress.  64 threads hammer the allocation path of a
// multi-shard runtime while the collector runs; under the TSan build this is
// the data-race gate for the lock-free block stack and the per-shard locks,
// under ASan it checks the free-list protocol never double-frees a cell.
//===----------------------------------------------------------------------===//

TEST(ShardedFreeList, SixtyFourMutatorChurn) {
  RuntimeConfig Config;
  Config.Heap.HeapBytes = 32ull << 20;
  Config.Heap.AllocShards = 8; // force multi-shard even on small machines
  Config.Heap.RefillBatchMax = 4;
  Config.Choice = CollectorChoice::Generational;
  Config.Collector.GcThreads = 2;
  Config.Collector.Trigger.YoungBytes = 2ull << 20; // keep sweep busy
  Runtime RT(Config);

  constexpr int NumThreads = 64;
  constexpr int AllocsPerThread = 1500;
  std::atomic<uint64_t> Allocated{0};
  std::vector<std::thread> Threads;
  Threads.reserve(NumThreads);
  for (int T = 0; T < NumThreads; ++T) {
    Threads.emplace_back([&RT, &Allocated, T] {
      auto M = RT.attachMutator();
      RootScope Roots(*M);
      // A rolling window of live roots so sweep has both garbage and
      // survivors in every block; sizes cover three size classes.
      ObjectRef Keep = Roots.add(M->allocate(2, 16));
      for (int I = 0; I < AllocsPerThread; ++I) {
        uint32_t Bytes = I % 3 == 0 ? 16 : (I % 3 == 1 ? 48 : 256);
        ObjectRef Obj = M->allocate(1, Bytes);
        ASSERT_NE(Obj, NullRef);
        if (I % 7 == T % 7)
          M->writeRef(Keep, I & 1, Obj);
        Allocated.fetch_add(1, std::memory_order_relaxed);
        if (I % 64 == 0)
          M->cooperate();
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Allocated.load(), uint64_t(NumThreads) * AllocsPerThread);

  // The sharded path actually ran: refills happened, and the snapshot
  // surfaces the new counters.
  MetricsSnapshot M = RT.metrics();
  EXPECT_EQ(M.AllocShardCount, 8u);
  EXPECT_GT(M.AllocRefills, 0u);
  EXPECT_GT(M.AllocCarveFallbacks, 0u);
}

} // namespace

//===- tests/heap/HeapTest.cpp ---------------------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "heap/Heap.h"

using namespace gengc;

namespace {

HeapConfig smallConfig() {
  HeapConfig Config;
  Config.HeapBytes = 4 << 20;
  return Config;
}

TEST(Heap, ReservesBlockZero) {
  Heap H(smallConfig());
  EXPECT_EQ(H.block(0).State, BlockState::Reserved);
  // Popping a chain never yields a cell in block 0 (offset 0 = null).
  Heap::CellChain Chain = H.popFreeChain(0);
  for (ObjectRef Cell = Chain.Head; Cell != NullRef;
       Cell = H.chainNext(Cell))
    EXPECT_NE(H.blockIndexOf(Cell), 0u);
}

TEST(Heap, PopFreeChainYieldsDistinctAlignedCells) {
  Heap H(smallConfig());
  unsigned Class = sizeClassFor(48);
  Heap::CellChain Chain = H.popFreeChain(Class);
  EXPECT_GT(Chain.Count, 0u);
  std::set<ObjectRef> Seen;
  unsigned Walked = 0;
  for (ObjectRef Cell = Chain.Head; Cell != NullRef;
       Cell = H.chainNext(Cell), ++Walked) {
    EXPECT_TRUE(Seen.insert(Cell).second) << "duplicate cell in chain";
    EXPECT_EQ(Cell % GranuleBytes, 0u);
    EXPECT_EQ(H.storageBytesOf(Cell), sizeClassBytes(Class));
  }
  EXPECT_EQ(Walked, Chain.Count);
}

TEST(Heap, ChainsFromSameClassNeverOverlap) {
  Heap H(smallConfig());
  std::set<ObjectRef> Seen;
  for (int I = 0; I < 8; ++I) {
    Heap::CellChain Chain = H.popFreeChain(2);
    for (ObjectRef Cell = Chain.Head; Cell != NullRef;
         Cell = H.chainNext(Cell))
      EXPECT_TRUE(Seen.insert(Cell).second);
  }
}

TEST(Heap, UsedBytesTracksPopsAndPushes) {
  Heap H(smallConfig());
  EXPECT_EQ(H.usedBytes(), 0u);
  Heap::CellChain Chain = H.popFreeChain(0);
  uint64_t Expected = uint64_t(Chain.Count) * sizeClassBytes(0);
  EXPECT_EQ(H.usedBytes(), Expected);
  H.pushFreeChain(0, Chain);
  EXPECT_EQ(H.usedBytes(), 0u);
}

TEST(Heap, AllocatedSinceGcAccumulatesAndResets) {
  Heap H(smallConfig());
  H.popFreeChain(0);
  H.popFreeChain(3);
  EXPECT_GT(H.allocatedSinceGcBytes(), 0u);
  H.resetAllocatedSinceGc();
  EXPECT_EQ(H.allocatedSinceGcBytes(), 0u);
}

TEST(Heap, ExhaustionReturnsEmptyChain) {
  HeapConfig Config;
  Config.HeapBytes = 2 * Heap::BlockBytes; // one usable block
  Heap H(Config);
  Heap::CellChain First = H.popFreeChain(NumSizeClasses - 1);
  EXPECT_GT(First.Count, 0u);
  // Drain everything.
  for (int I = 0; I < 1000; ++I)
    if (H.popFreeChain(NumSizeClasses - 1).Count == 0)
      break;
  EXPECT_EQ(H.popFreeChain(NumSizeClasses - 1).Count, 0u);
  // Returning memory makes it allocatable again.
  H.pushFreeChain(NumSizeClasses - 1, First);
  EXPECT_GT(H.popFreeChain(NumSizeClasses - 1).Count, 0u);
}

TEST(Heap, ColorRoundTrip) {
  Heap H(smallConfig());
  Heap::CellChain Chain = H.popFreeChain(1);
  ObjectRef Ref = Chain.Head;
  EXPECT_EQ(H.loadColor(Ref), Color::Blue);
  H.storeColor(Ref, Color::White);
  EXPECT_EQ(H.loadColor(Ref), Color::White);
  Color Expected = Color::White;
  EXPECT_TRUE(H.casColor(Ref, Expected, Color::Gray));
  EXPECT_EQ(H.loadColor(Ref), Color::Gray);
  Expected = Color::White; // wrong expectation
  EXPECT_FALSE(H.casColor(Ref, Expected, Color::Black));
  EXPECT_EQ(Expected, Color::Gray) << "failed CAS reports the actual color";
}

TEST(Heap, WordAccessRoundTrip) {
  Heap H(smallConfig());
  H.wordAt(1024).store(0xDEADBEEF);
  EXPECT_EQ(H.wordAt(1024).load(), 0xDEADBEEFu);
}

TEST(Heap, BlockDescriptorsMatchCarving) {
  Heap H(smallConfig());
  unsigned Class = sizeClassFor(100); // 128-byte cells
  Heap::CellChain Chain = H.popFreeChain(Class);
  uint32_t BlockIdx = H.blockIndexOf(Chain.Head);
  const BlockDescriptor &Desc = H.block(BlockIdx);
  EXPECT_EQ(Desc.State, BlockState::SizeClass);
  EXPECT_EQ(Desc.CellBytes, 128u);
  EXPECT_EQ(Desc.NumCells, Heap::BlockBytes / 128);
  EXPECT_EQ(Desc.SizeClassIdx, Class);
}

TEST(Heap, CellRecipMatchesDivision) {
  Heap H(smallConfig());
  // Carve one block of every class and verify the reciprocal shortcut.
  for (unsigned Class = 0; Class < NumSizeClasses; ++Class) {
    Heap::CellChain Chain = H.popFreeChain(Class);
    ASSERT_GT(Chain.Count, 0u);
    const BlockDescriptor &Desc = H.block(H.blockIndexOf(Chain.Head));
    for (uint32_t Offset = 0; Offset < Heap::BlockBytes; Offset += 97) {
      uint32_t ByDiv = Offset / Desc.CellBytes;
      uint32_t ByRecip =
          uint32_t((uint64_t(Offset) * Desc.CellRecip) >> 32);
      EXPECT_EQ(ByDiv, ByRecip) << "class " << Class << " offset " << Offset;
    }
  }
}

TEST(Heap, ForEachObjectOverlappingCardSmallCards) {
  HeapConfig Config = smallConfig();
  Config.CardBytes = 16;
  Heap H(Config);
  unsigned Class = sizeClassFor(40); // 48-byte cells: cards straddle cells
  Heap::CellChain Chain = H.popFreeChain(Class);
  uint32_t BlockIdx = H.blockIndexOf(Chain.Head);
  uint64_t Base = uint64_t(BlockIdx) << Heap::BlockShift;

  // Card at Base+16 lies inside cell 0 (bytes 0..47).
  std::vector<ObjectRef> Refs;
  H.forEachObjectOverlappingCard(H.cards().cardIndexFor(Base + 16),
                                 [&](ObjectRef R) { Refs.push_back(R); });
  ASSERT_EQ(Refs.size(), 1u);
  EXPECT_EQ(Refs[0], ObjectRef(Base));
}

TEST(Heap, ForEachObjectOverlappingCardLargeCards) {
  HeapConfig Config = smallConfig();
  Config.CardBytes = 4096;
  Heap H(Config);
  unsigned Class = sizeClassFor(1000); // 1024-byte cells: 4 per card
  Heap::CellChain Chain = H.popFreeChain(Class);
  uint32_t BlockIdx = H.blockIndexOf(Chain.Head);
  uint64_t Base = uint64_t(BlockIdx) << Heap::BlockShift;

  std::vector<ObjectRef> Refs;
  H.forEachObjectOverlappingCard(H.cards().cardIndexFor(Base),
                                 [&](ObjectRef R) { Refs.push_back(R); });
  EXPECT_EQ(Refs.size(), 4u);
  for (unsigned I = 0; I < Refs.size(); ++I)
    EXPECT_EQ(Refs[I], ObjectRef(Base + I * 1024));
}

TEST(Heap, ForEachObjectOverlappingCardFreeBlock) {
  Heap H(smallConfig());
  unsigned Calls = 0;
  // Cards over the reserved block and over untouched blocks yield nothing.
  H.forEachObjectOverlappingCard(0, [&](ObjectRef) { ++Calls; });
  H.forEachObjectOverlappingCard(
      H.cards().cardIndexFor(2 * Heap::BlockBytes),
      [&](ObjectRef) { ++Calls; });
  EXPECT_EQ(Calls, 0u);
}

TEST(Heap, CountAllocatedCardsGrowsWithCarving) {
  HeapConfig Config = smallConfig();
  Config.CardBytes = 4096;
  Heap H(Config);
  EXPECT_EQ(H.countAllocatedCards(), 0u);
  H.popFreeChain(0);
  size_t PerBlock = Heap::BlockBytes / 4096;
  EXPECT_EQ(H.countAllocatedCards(), PerBlock);
  H.popFreeChain(1);
  EXPECT_EQ(H.countAllocatedCards(), 2 * PerBlock);
}

TEST(Heap, ConcurrentPopsYieldDisjointCells) {
  Heap H(smallConfig());
  constexpr unsigned Threads = 4;
  std::vector<std::vector<ObjectRef>> PerThread(Threads);
  std::vector<std::thread> Workers;
  for (unsigned W = 0; W < Threads; ++W)
    Workers.emplace_back([&, W] {
      for (int I = 0; I < 20; ++I) {
        Heap::CellChain Chain = H.popFreeChain(1);
        for (ObjectRef Cell = Chain.Head; Cell != NullRef;
             Cell = H.chainNext(Cell))
          PerThread[W].push_back(Cell);
      }
    });
  for (std::thread &W : Workers)
    W.join();
  std::set<ObjectRef> All;
  for (const auto &Cells : PerThread)
    for (ObjectRef Cell : Cells)
      EXPECT_TRUE(All.insert(Cell).second) << "cell handed out twice";
}

} // namespace

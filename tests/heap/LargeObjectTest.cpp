//===- tests/heap/LargeObjectTest.cpp --------------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "heap/Heap.h"

using namespace gengc;

namespace {

HeapConfig smallConfig() {
  HeapConfig Config;
  Config.HeapBytes = 4 << 20;
  return Config;
}

TEST(LargeObject, AllocatesBlockRuns) {
  Heap H(smallConfig());
  ObjectRef Run = H.allocateLarge(100 << 10); // 100 KB -> 2 blocks
  ASSERT_NE(Run, NullRef);
  uint32_t BlockIdx = H.blockIndexOf(Run);
  EXPECT_EQ(H.block(BlockIdx).State, BlockState::LargeStart);
  EXPECT_EQ(H.block(BlockIdx).RunBlocks, 2u);
  EXPECT_EQ(H.block(BlockIdx + 1).State, BlockState::LargeCont);
  EXPECT_EQ(H.block(BlockIdx + 1).RunStart, BlockIdx);
  EXPECT_EQ(H.storageBytesOf(Run), 2 * Heap::BlockBytes);
}

TEST(LargeObject, RunStartsAtBlockBoundary) {
  Heap H(smallConfig());
  ObjectRef Run = H.allocateLarge(9000);
  ASSERT_NE(Run, NullRef);
  EXPECT_EQ(Run % Heap::BlockBytes, 0u);
}

TEST(LargeObject, FreeLargeRunRestoresBlocks) {
  Heap H(smallConfig());
  uint64_t FreeBefore = H.freeBlockCount();
  ObjectRef Run = H.allocateLarge(200 << 10);
  ASSERT_NE(Run, NullRef);
  EXPECT_LT(H.freeBlockCount(), FreeBefore);
  H.freeLargeRun(H.blockIndexOf(Run));
  EXPECT_EQ(H.freeBlockCount(), FreeBefore);
  EXPECT_EQ(H.block(H.blockIndexOf(Run)).State, BlockState::Free);
}

TEST(LargeObject, UsedBytesCoverWholeRun) {
  Heap H(smallConfig());
  uint64_t Before = H.usedBytes();
  ObjectRef Run = H.allocateLarge(65537); // 2 blocks
  ASSERT_NE(Run, NullRef);
  EXPECT_EQ(H.usedBytes() - Before, 2 * Heap::BlockBytes);
  H.freeLargeRun(H.blockIndexOf(Run));
  EXPECT_EQ(H.usedBytes(), Before);
}

TEST(LargeObject, ExhaustionReturnsNull) {
  HeapConfig Config;
  Config.HeapBytes = 4 * Heap::BlockBytes;
  Heap H(Config);
  // 3 usable blocks; a 4-block run cannot fit.
  EXPECT_EQ(H.allocateLarge(uint32_t(4 * Heap::BlockBytes)), NullRef);
  // A 3-block run fits exactly.
  ObjectRef Run = H.allocateLarge(uint32_t(3 * Heap::BlockBytes) - 64);
  EXPECT_NE(Run, NullRef);
  // Nothing else fits now.
  EXPECT_EQ(H.allocateLarge(70000), NullRef);
}

TEST(LargeObject, FreedRunsCanBeReused) {
  HeapConfig Config;
  Config.HeapBytes = 8 * Heap::BlockBytes;
  Heap H(Config);
  for (int I = 0; I < 20; ++I) {
    ObjectRef Run = H.allocateLarge(uint32_t(3 * Heap::BlockBytes) - 64);
    ASSERT_NE(Run, NullRef) << "iteration " << I;
    H.freeLargeRun(H.blockIndexOf(Run));
  }
}

TEST(LargeObject, RunsAndCellBlocksCoexist) {
  Heap H(smallConfig());
  Heap::CellChain Cells = H.popFreeChain(0);
  ObjectRef Run = H.allocateLarge(150 << 10);
  ASSERT_NE(Run, NullRef);
  Heap::CellChain MoreCells = H.popFreeChain(5);
  ASSERT_GT(MoreCells.Count, 0u);
  // Distinct blocks.
  EXPECT_NE(H.blockIndexOf(Cells.Head), H.blockIndexOf(Run));
  EXPECT_NE(H.blockIndexOf(MoreCells.Head), H.blockIndexOf(Run));
}

TEST(LargeObject, ColorLivesAtRunStartGranule) {
  Heap H(smallConfig());
  ObjectRef Run = H.allocateLarge(100 << 10);
  ASSERT_NE(Run, NullRef);
  H.storeColor(Run, Color::Black);
  EXPECT_EQ(H.loadColor(Run), Color::Black);
}

} // namespace

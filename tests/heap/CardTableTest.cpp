//===- tests/heap/CardTableTest.cpp ----------------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "heap/CardTable.h"

using namespace gengc;

namespace {

constexpr uint64_t HeapBytes = 1 << 20;

TEST(CardTable, GeometryPerCardSize) {
  for (uint32_t Card = CardTable::MinCardBytes;
       Card <= CardTable::MaxCardBytes; Card *= 2) {
    CardTable T(HeapBytes, Card);
    EXPECT_EQ(T.cardBytes(), Card);
    EXPECT_EQ(T.numCards(), HeapBytes / Card);
  }
}

TEST(CardTable, MarkDirtiesTheRightCard) {
  CardTable T(HeapBytes, 16);
  T.markCard(100); // card 6
  EXPECT_TRUE(T.isDirty(6));
  EXPECT_FALSE(T.isDirty(5));
  EXPECT_FALSE(T.isDirty(7));
}

TEST(CardTable, CardIndexAndStartRoundTrip) {
  CardTable T(HeapBytes, 256);
  for (uint64_t Offset : {uint64_t(0), uint64_t(255), uint64_t(256), uint64_t(1000), HeapBytes - 1}) {
    size_t Index = T.cardIndexFor(Offset);
    EXPECT_LE(T.cardStart(Index), Offset);
    EXPECT_LT(Offset, T.cardStart(Index) + T.cardBytes());
  }
}

TEST(CardTable, ClearCardVariantsClear) {
  CardTable T(HeapBytes, 16);
  T.markCard(0);
  T.clearCard(0);
  EXPECT_FALSE(T.isDirty(0));
  T.markCard(0);
  T.clearCardUncontended(0);
  EXPECT_FALSE(T.isDirty(0));
}

TEST(CardTable, ClearAllClearsEverything) {
  CardTable T(HeapBytes, 16);
  for (uint64_t Offset = 0; Offset < HeapBytes; Offset += 4096)
    T.markCard(Offset);
  T.clearAll();
  EXPECT_EQ(T.countDirty(), 0u);
}

TEST(CardTable, CountDirtyCountsDistinctCards) {
  CardTable T(HeapBytes, 16);
  T.markCard(0);
  T.markCard(4); // same card
  T.markCard(16);
  T.markCard(4096);
  EXPECT_EQ(T.countDirty(), 3u);
}

TEST(CardTable, ForEachDirtyIndexFindsAllMarks) {
  CardTable T(HeapBytes, 16);
  std::vector<size_t> Expected;
  // A scattering including word-boundary-straddling patterns.
  for (size_t Index : {size_t(0), size_t(7), size_t(8), size_t(63),
                       size_t(64), size_t(1000), T.numCards() - 1}) {
    T.markCardIndex(Index);
    Expected.push_back(Index);
  }
  std::vector<size_t> Found;
  T.forEachDirtyIndex([&](size_t Index) { Found.push_back(Index); });
  EXPECT_EQ(Found, Expected);
}

TEST(CardTable, ForEachDirtyIndexEmptyTable) {
  CardTable T(HeapBytes, 4096);
  unsigned Calls = 0;
  T.forEachDirtyIndex([&](size_t) { ++Calls; });
  EXPECT_EQ(Calls, 0u);
}

/// The Section 7.2 ordering primitive: a mark that races with clearCard
/// either survives, or the clear's acquiring exchange observed it (so the
/// collector re-scans).  Either way a mark is never silently lost while
/// its writer believes it landed.
TEST(CardTable, ConcurrentMarkAndClearNeverLosesBothSides) {
  CardTable T(HeapBytes, 16);
  constexpr int Rounds = 20000;
  std::atomic<int> MarksObservedClear{0};

  std::thread Marker([&] {
    for (int I = 0; I < Rounds; ++I) {
      T.markCardIndex(5);
      // Writer verifies its own mark is present or was consumed after it.
      if (!T.isDirty(5))
        MarksObservedClear.fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::thread Clearer([&] {
    for (int I = 0; I < Rounds; ++I)
      T.clearCard(5);
  });
  Marker.join();
  Clearer.join();
  // No assertion on the exact count: the test exercises the CAS/exchange
  // paths under contention; TSan/ASan builds verify the absence of races.
  SUCCEED();
}

class CardSizeSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(CardSizeSweep, OneMarkDirtiesExactlyOneCard) {
  CardTable T(HeapBytes, GetParam());
  T.markCard(HeapBytes / 2 + 3);
  EXPECT_EQ(T.countDirty(), 1u);
}

INSTANTIATE_TEST_SUITE_P(AllPaperSizes, CardSizeSweep,
                         ::testing::Values(16, 32, 64, 128, 256, 512, 1024,
                                           2048, 4096));

} // namespace

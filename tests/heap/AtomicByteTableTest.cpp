//===- tests/heap/AtomicByteTableTest.cpp ----------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <thread>

#include "heap/AtomicByteTable.h"

using namespace gengc;

namespace {

TEST(AtomicByteTable, StartsZeroed) {
  AtomicByteTable T(1 << 16, 4);
  for (size_t I = 0; I < T.size(); ++I)
    EXPECT_EQ(T.entry(I).load(), 0);
}

TEST(AtomicByteTable, SizeMatchesGranule) {
  AtomicByteTable T(1 << 16, 4);
  EXPECT_EQ(T.size(), size_t(1 << 12));
  AtomicByteTable T2(1 << 16, 12);
  EXPECT_EQ(T2.size(), size_t(16));
}

TEST(AtomicByteTable, IndexForMapsOffsets) {
  AtomicByteTable T(1 << 16, 4);
  EXPECT_EQ(T.indexFor(0), 0u);
  EXPECT_EQ(T.indexFor(15), 0u);
  EXPECT_EQ(T.indexFor(16), 1u);
  EXPECT_EQ(T.indexFor(65535), T.size() - 1);
}

TEST(AtomicByteTable, EntryForAliasesEntry) {
  AtomicByteTable T(1 << 16, 4);
  T.entryFor(32).store(7);
  EXPECT_EQ(T.entry(2).load(), 7);
}

TEST(AtomicByteTable, ClearAllResets) {
  AtomicByteTable T(1 << 16, 4);
  for (size_t I = 0; I < T.size(); I += 3)
    T.entry(I).store(1);
  T.clearAll();
  for (size_t I = 0; I < T.size(); ++I)
    EXPECT_EQ(T.entry(I).load(), 0);
}

TEST(AtomicByteTable, RacyWordSeesStores) {
  AtomicByteTable T(1 << 16, 4);
  T.entry(3).store(0xAB);
  uint64_t Word = T.racyWord(0);
  EXPECT_EQ((Word >> 24) & 0xFF, 0xABu);
}

TEST(AtomicByteTable, WordContainsByteDetectsAllLanes) {
  for (unsigned Lane = 0; Lane < 8; ++Lane) {
    uint64_t Word = uint64_t(3) << (Lane * 8);
    EXPECT_TRUE(AtomicByteTable::wordContainsByte(Word, 3));
    EXPECT_FALSE(AtomicByteTable::wordContainsByte(Word, 4));
  }
  EXPECT_FALSE(AtomicByteTable::wordContainsByte(0, 3));
  EXPECT_TRUE(AtomicByteTable::wordContainsByte(0, 0));
  EXPECT_TRUE(AtomicByteTable::wordContainsByte(0x0303030303030303ull, 3));
}

TEST(AtomicByteTable, WordContainsByteNoFalsePositivesOnNeighbors) {
  // Bytes 2 and 4 must not be mistaken for 3.
  EXPECT_FALSE(AtomicByteTable::wordContainsByte(0x0202020202020202ull, 3));
  EXPECT_FALSE(AtomicByteTable::wordContainsByte(0x0404040404040404ull, 3));
  // Crafted pattern straddling lanes.
  EXPECT_FALSE(AtomicByteTable::wordContainsByte(0x0400020004000200ull, 3));
}

TEST(AtomicByteTable, ConcurrentStoresAreAllVisible) {
  AtomicByteTable T(1 << 16, 4);
  constexpr unsigned Threads = 4;
  std::vector<std::thread> Workers;
  for (unsigned W = 0; W < Threads; ++W)
    Workers.emplace_back([&T, W] {
      for (size_t I = W; I < T.size(); I += Threads)
        T.entry(I).store(uint8_t(W + 1));
    });
  for (std::thread &W : Workers)
    W.join();
  for (size_t I = 0; I < T.size(); ++I)
    EXPECT_EQ(T.entry(I).load(), uint8_t(I % Threads + 1));
}

} // namespace

//===- tests/heap/AgeTableTest.cpp -----------------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "heap/AgeTable.h"

using namespace gengc;

namespace {

TEST(AgeTable, StartsAtZero) {
  AgeTable T(1 << 20);
  EXPECT_EQ(T.ageOf(0), 0);
  EXPECT_EQ(T.ageOf(4096), 0);
}

TEST(AgeTable, SetAndGetPerGranule) {
  AgeTable T(1 << 20);
  T.setAge(16, 1);
  T.setAge(32, 5);
  EXPECT_EQ(T.ageOf(16), 1);
  EXPECT_EQ(T.ageOf(32), 5);
  EXPECT_EQ(T.ageOf(48), 0) << "neighbors must be untouched";
}

TEST(AgeTable, GranuleIndexing) {
  AgeTable T(1 << 20);
  // Offsets within the same granule share the age entry.
  T.setAge(64, 3);
  EXPECT_EQ(T.ageOf(64 + 15), 3);
  EXPECT_EQ(T.ageOf(64 + 16), 0);
}

TEST(AgeTable, ClearAllResets) {
  AgeTable T(1 << 20);
  for (uint32_t Ref = 0; Ref < (1 << 20); Ref += 1024)
    T.setAge(Ref, 7);
  T.clearAll();
  for (uint32_t Ref = 0; Ref < (1 << 20); Ref += 1024)
    EXPECT_EQ(T.ageOf(Ref), 0);
}

TEST(AgeTable, OneEntryPerGranule) {
  AgeTable T(1 << 20);
  EXPECT_EQ(T.size(), size_t((1 << 20) / GranuleBytes));
}

} // namespace

//===- tests/heap/SizeClassesTest.cpp --------------------------------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include "heap/Ref.h"
#include "heap/SizeClasses.h"

using namespace gengc;

namespace {

TEST(SizeClasses, ClassesAreStrictlyIncreasing) {
  for (unsigned I = 1; I < NumSizeClasses; ++I)
    EXPECT_GT(sizeClassBytes(I), sizeClassBytes(I - 1));
}

TEST(SizeClasses, AllClassesAreGranuleMultiples) {
  for (unsigned I = 0; I < NumSizeClasses; ++I)
    EXPECT_EQ(sizeClassBytes(I) % GranuleBytes, 0u)
        << "class " << I << " breaks granule alignment";
}

TEST(SizeClasses, SmallestClassIsOneGranule) {
  EXPECT_EQ(sizeClassBytes(0), GranuleBytes);
}

TEST(SizeClasses, LargestClassMatchesThreshold) {
  EXPECT_EQ(sizeClassBytes(NumSizeClasses - 1), MaxSmallObjectBytes);
}

TEST(SizeClasses, LookupReturnsFittingClass) {
  for (uint32_t Bytes = 1; Bytes <= MaxSmallObjectBytes; Bytes += 7) {
    unsigned Class = sizeClassFor(Bytes);
    ASSERT_LT(Class, NumSizeClasses);
    EXPECT_GE(sizeClassBytes(Class), Bytes);
    if (Class > 0) {
      EXPECT_LT(sizeClassBytes(Class - 1), Bytes)
          << "class for " << Bytes << " is not minimal";
    }
  }
}

TEST(SizeClasses, ExactBoundariesMapToThemselves) {
  for (unsigned I = 0; I < NumSizeClasses; ++I)
    EXPECT_EQ(sizeClassFor(sizeClassBytes(I)), I);
}

TEST(SizeClasses, OversizedRequestsAreLarge) {
  EXPECT_EQ(sizeClassFor(MaxSmallObjectBytes + 1), NumSizeClasses);
  EXPECT_EQ(sizeClassFor(1u << 20), NumSizeClasses);
}

TEST(SizeClasses, WorstCaseInternalFragmentationBounded) {
  // The 1.5x ladder keeps waste below 50% of the allocation.
  for (uint32_t Bytes = GranuleBytes; Bytes <= MaxSmallObjectBytes;
       Bytes += 13) {
    uint32_t Cell = sizeClassBytes(sizeClassFor(Bytes));
    EXPECT_LE(Cell, Bytes * 2) << "excess fragmentation at " << Bytes;
  }
}

} // namespace

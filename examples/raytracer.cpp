//===- examples/raytracer.cpp - Multithreaded ray tracer on the GC heap ----===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
//
// A working miniature of the paper's "multithreaded Ray Tracer" (Section
// 8.2): N render threads trace rays through a sphere scene.  Like the Java
// original, every intermediate value — rays, hit records, color samples —
// is a heap object, so rendering allocates furiously and nearly everything
// dies young; the scene itself is built once and becomes the old
// generation.  The collector runs on-the-fly underneath: no render thread
// is ever stopped.
//
// Run:  ./example_raytracer [threads] [size]    (default: 4 threads, 256px)
//
//===----------------------------------------------------------------------===//

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "core/GenGc.h"

using namespace gengc;

namespace {

/// Heap vector3: 0 refs, 3 float data words (bit-cast into uint32).
struct Vec3Heap {
  explicit Vec3Heap(Heap &H) : H(H) {}

  ObjectRef make(Mutator &M, float X, float Y, float Z) {
    ObjectRef Ref = M.allocate(0, 12, /*Tag=*/1);
    set(Ref, X, Y, Z);
    return Ref;
  }

  void set(ObjectRef Ref, float X, float Y, float Z) {
    storeDataWord(H, Ref, 0, std::bit_cast<uint32_t>(X));
    storeDataWord(H, Ref, 1, std::bit_cast<uint32_t>(Y));
    storeDataWord(H, Ref, 2, std::bit_cast<uint32_t>(Z));
  }

  float x(ObjectRef Ref) {
    return std::bit_cast<float>(loadDataWord(H, Ref, 0));
  }
  float y(ObjectRef Ref) {
    return std::bit_cast<float>(loadDataWord(H, Ref, 1));
  }
  float z(ObjectRef Ref) {
    return std::bit_cast<float>(loadDataWord(H, Ref, 2));
  }

  Heap &H;
};

/// A sphere: [center(vec3 ref)] + data [radius, r, g, b].
struct Scene {
  Scene(Runtime &RT, Mutator &M, Vec3Heap &V) : V(V) {
    // Scene list object: one ref slot per sphere.
    constexpr float Coords[][7] = {
        // cx    cy     cz     radius  r    g    b
        {0.0f, -100.5f, -1.0f, 100.0f, 0.6f, 0.8f, 0.3f}, // ground
        {0.0f, 0.0f, -1.2f, 0.5f, 0.9f, 0.2f, 0.2f},
        {-1.1f, 0.0f, -1.0f, 0.45f, 0.2f, 0.3f, 0.9f},
        {1.1f, 0.1f, -1.3f, 0.55f, 0.9f, 0.8f, 0.2f},
        {0.2f, 0.9f, -1.6f, 0.4f, 0.8f, 0.8f, 0.8f},
    };
    NumSpheres = sizeof(Coords) / sizeof(Coords[0]);
    List = M.allocate(uint32_t(NumSpheres), 0, /*Tag=*/2);
    RT.globalRoots().addRoot(List);
    for (unsigned I = 0; I < NumSpheres; ++I) {
      RootScope Roots(M);
      ObjectRef Sphere = Roots.add(M.allocate(1, 16, /*Tag=*/3));
      ObjectRef Center =
          V.make(M, Coords[I][0], Coords[I][1], Coords[I][2]);
      M.writeRef(Sphere, 0, Center);
      storeDataWord(V.H, Sphere, 0, std::bit_cast<uint32_t>(Coords[I][3]));
      storeDataWord(V.H, Sphere, 1, std::bit_cast<uint32_t>(Coords[I][4]));
      storeDataWord(V.H, Sphere, 2, std::bit_cast<uint32_t>(Coords[I][5]));
      storeDataWord(V.H, Sphere, 3, std::bit_cast<uint32_t>(Coords[I][6]));
      M.writeRef(List, I, Sphere);
    }
  }

  ObjectRef List = NullRef;
  unsigned NumSpheres = 0;
  Vec3Heap &V;
};

/// One render thread: traces every pixel of its row band.  Rays and hit
/// records are heap objects with a sliding rooted window, so they die
/// young en masse — the workload profile of the paper's benchmark.
struct RenderResult {
  uint64_t Rays = 0;
  double ColorSum = 0; // checksum, and proof the image is deterministic
};

RenderResult renderBand(Runtime &RT, const Scene &Scene, unsigned Width,
                        unsigned Height, unsigned Y0, unsigned Y1) {
  auto M = RT.attachMutator();
  Vec3Heap V(RT.heap());
  RenderResult Result;

  // Rooted scratch: ray origin, ray direction, accumulated color.  The
  // scope pops all of them (plus the per-pixel hit records) on return.
  RootScope Roots(*M);
  size_t Origin = Roots.addSlot(V.make(*M, 0, 0.25f, 0.7f));
  size_t Dir = Roots.addSlot(NullRef);

  for (unsigned Y = Y0; Y < Y1; ++Y) {
    for (unsigned X = 0; X < Width; ++X) {
      M->cooperate();
      // Fresh direction object per ray (allocation churn by design).
      float U = (float(X) / Width - 0.5f) * 2.2f;
      float W = -(float(Y) / Height - 0.5f) * 2.2f;
      Roots.set(Dir, V.make(*M, U, W, -1.0f));
      ++Result.Rays;

      // Intersect every sphere; keep the nearest hit as a heap record
      // (rooted for this pixel only).
      float Nearest = 1e30f;
      ObjectRef Hit = NullRef;
      RootScope PixelRoots(*M);
      size_t HitSlot = PixelRoots.addSlot(NullRef);
      for (unsigned S = 0; S < Scene.NumSpheres; ++S) {
        ObjectRef Sphere = M->readRef(Scene.List, S);
        ObjectRef Center = M->readRef(Sphere, 0);
        float Radius =
            std::bit_cast<float>(loadDataWord(V.H, Sphere, 0));
        float OX = V.x(M->root(Origin)) - V.x(Center);
        float OY = V.y(M->root(Origin)) - V.y(Center);
        float OZ = V.z(M->root(Origin)) - V.z(Center);
        ObjectRef D = M->root(Dir);
        float A = V.x(D) * V.x(D) + V.y(D) * V.y(D) + V.z(D) * V.z(D);
        float B = 2 * (OX * V.x(D) + OY * V.y(D) + OZ * V.z(D));
        float C = OX * OX + OY * OY + OZ * OZ - Radius * Radius;
        float Disc = B * B - 4 * A * C;
        if (Disc < 0)
          continue;
        float T = (-B - std::sqrt(Disc)) / (2 * A);
        if (T > 0.001f && T < Nearest) {
          Nearest = T;
          // Heap hit record: [sphere ref] + [t].
          Hit = M->allocate(1, 4, /*Tag=*/4);
          PixelRoots.set(HitSlot, Hit);
          M->writeRef(Hit, 0, Sphere);
          storeDataWord(V.H, Hit, 0, std::bit_cast<uint32_t>(T));
        }
      }

      // Shade: sphere albedo attenuated by depth, or sky gradient.
      if (Hit != NullRef) {
        ObjectRef Sphere = M->readRef(Hit, 0);
        float T = std::bit_cast<float>(loadDataWord(V.H, Hit, 0));
        float Fade = 1.0f / (1.0f + 0.15f * T);
        for (int Ch = 0; Ch < 3; ++Ch)
          Result.ColorSum += Fade * std::bit_cast<float>(loadDataWord(
                                        V.H, Sphere, uint32_t(1 + Ch)));
      } else {
        float W = -(float(Y) / Height - 0.5f) * 2.2f;
        Result.ColorSum += 0.6 + 0.3 * W;
      }
    }
  }
  return Result;
}

} // namespace

int main(int Argc, char **Argv) {
  unsigned Threads = Argc > 1 ? unsigned(std::atoi(Argv[1])) : 4;
  unsigned Size = Argc > 2 ? unsigned(std::atoi(Argv[2])) : 256;
  if (Threads == 0 || Size == 0) {
    std::fprintf(stderr, "usage: %s [threads>0] [size>0]\n", Argv[0]);
    return 1;
  }

  RuntimeConfig Config;
  Config.Heap.HeapBytes = 32ull << 20;
  Config.Choice = CollectorChoice::Generational;
  Config.Collector.Trigger.YoungBytes = 4ull << 20;
  Runtime RT(Config);

  // Build the scene (becomes the old generation).
  {
    auto M = RT.attachMutator();
    Vec3Heap V(RT.heap());
    static Scene *ScenePtr = nullptr;
    ScenePtr = new Scene(RT, *M, V);

    std::vector<RenderResult> Results(Threads);
    std::vector<std::thread> Workers;
    unsigned Band = (Size + Threads - 1) / Threads;
    for (unsigned T = 0; T < Threads; ++T)
      Workers.emplace_back([&, T] {
        unsigned Y0 = T * Band, Y1 = std::min(Size, (T + 1) * Band);
        if (Y0 < Y1)
          Results[T] = renderBand(RT, *ScenePtr, Size, Size, Y0, Y1);
      });
    {
      BlockedScope Blocked(*M); // main thread parks; handshakes proceed
      for (std::thread &W : Workers)
        W.join();
    }

    RenderResult Total;
    for (const RenderResult &R : Results) {
      Total.Rays += R.Rays;
      Total.ColorSum += R.ColorSum;
    }
    std::printf("rendered %ux%u with %u threads: %llu rays, "
                "image checksum %.3f\n",
                Size, Size, Threads, (unsigned long long)Total.Rays,
                Total.ColorSum);
    delete ScenePtr;
  }

  GcRunStats Stats = RT.gcStats();
  std::printf("GC: %zu collections (%zu partial, %zu full) ran on-the-fly "
              "under the render threads;\n    %.1f%% of young objects died "
              "young, %llu KB reclaimed\n",
              Stats.Cycles.size(), Stats.count(CycleKind::Partial),
              Stats.count(CycleKind::Full),
              Stats.percentFreedPartialObjects(),
              (unsigned long long)(Stats.totalAll(&CycleStats::BytesFreed) >>
                                   10));
  return 0;
}

//===- examples/gcbench.cpp - Boehm's GCBench on the gengc runtime ---------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
//
// An adaptation of Hans Boehm's classic GCBench (the de-facto standard GC
// micro-benchmark of the era; Boehm is both an author of the Demers et al.
// design this paper builds on and acknowledged in the paper).  It builds
// complete binary trees of increasing depth:
//
//   - "temporary" trees, built and immediately dropped (young garbage);
//   - a "long-lived" tree and array that persist across the whole run
//     (old generation).
//
// Reported: time per depth, and the collector's statistics — a nice
// end-to-end demonstration that the generational collector keeps its
// partial collections cheap while the long-lived tree sits tenured.
//
// Run:  ./example_gcbench [maxDepth]          (default 14)
//
//===----------------------------------------------------------------------===//

#include <cstdio>
#include <cstdlib>

#include "core/GenGc.h"
#include "support/Timer.h"

using namespace gengc;

namespace {

/// Tree node: [left, right] refs + two data words.
constexpr uint32_t NodeRefs = 2;
constexpr uint32_t NodeData = 8;

/// Builds a complete binary tree top-down, rooted while under
/// construction.
ObjectRef makeTree(Mutator &M, int Depth) {
  M.cooperate();
  ObjectRef Node = M.allocate(NodeRefs, NodeData);
  if (Depth <= 0)
    return Node;
  RootScope Roots(M);
  Roots.add(Node);
  M.writeRef(Node, 0, makeTree(M, Depth - 1));
  M.writeRef(Node, 1, makeTree(M, Depth - 1));
  return Node;
}

/// Populates an existing tree bottom-up, node by node (GCBench's second
/// construction order; stresses the write barrier differently).
void populate(Mutator &M, ObjectRef Node, int Depth) {
  M.cooperate();
  if (Depth <= 0)
    return;
  RootScope Roots(M);
  Roots.add(Node);
  M.writeRef(Node, 0, M.allocate(NodeRefs, NodeData));
  M.writeRef(Node, 1, M.allocate(NodeRefs, NodeData));
  populate(M, M.readRef(Node, 0), Depth - 1);
  populate(M, M.readRef(Node, 1), Depth - 1);
}

int treeSize(int Depth) { return (1 << (Depth + 1)) - 1; }

/// GCBench allocates a fixed volume per depth: more (smaller) trees at
/// shallow depths.
int iterationCount(int MaxDepth, int Depth) {
  return 2 * treeSize(MaxDepth) / treeSize(Depth);
}

} // namespace

int main(int Argc, char **Argv) {
  int MaxDepth = Argc > 1 ? std::atoi(Argv[1]) : 14;
  if (MaxDepth < 4 || MaxDepth > 18) {
    std::fprintf(stderr, "usage: %s [maxDepth in 4..18]\n", Argv[0]);
    return 1;
  }
  constexpr int MinDepth = 4;

  RuntimeConfig Config;
  Config.Heap.HeapBytes = 64ull << 20;
  Config.Choice = CollectorChoice::Generational;
  Config.Collector.Trigger.YoungBytes = 4ull << 20;
  Runtime RT(Config);
  auto M = RT.attachMutator();

  std::printf("GCBench, depths %d..%d\n", MinDepth, MaxDepth);
  uint64_t Start = nowNanos();

  // The long-lived structures (the old generation).
  std::printf(" creating long-lived binary tree of depth %d\n", MaxDepth);
  ObjectRef LongLived = M->allocate(NodeRefs, NodeData);
  RT.globalRoots().addRoot(LongLived);
  populate(*M, LongLived, MaxDepth);

  std::printf(" creating long-lived array of 250000 heap values\n");
  constexpr uint32_t ArrayChunks = 250;
  ObjectRef Array = M->allocate(ArrayChunks, 0);
  RT.globalRoots().addRoot(Array);
  for (uint32_t I = 0; I < ArrayChunks; ++I) {
    ObjectRef Chunk = M->allocate(0, 1000 * 4);
    for (uint32_t J = 0; J < 1000; ++J)
      storeDataWord(RT.heap(), Chunk, J, J);
    M->writeRef(Array, I, Chunk);
    M->cooperate();
  }

  // Temporary trees per depth — all garbage the moment they are dropped.
  for (int Depth = MinDepth; Depth <= MaxDepth; Depth += 2) {
    int Iterations = iterationCount(MaxDepth, Depth);
    uint64_t T0 = nowNanos();
    for (int I = 0; I < Iterations; ++I) {
      ObjectRef TopDown = makeTree(*M, Depth);
      (void)TopDown; // dropped immediately
      RootScope Roots(*M);
      ObjectRef BottomUp = Roots.add(M->allocate(NodeRefs, NodeData));
      populate(*M, BottomUp, Depth);
    }
    std::printf(" depth %2d: %6d trees, %7.1f ms\n", Depth, 2 * Iterations,
                double(nowNanos() - T0) * 1e-6);
  }

  // The long-lived tree must have survived everything.
  int Checked = 0;
  std::vector<ObjectRef> Walk{LongLived};
  while (!Walk.empty()) {
    ObjectRef Node = Walk.back();
    Walk.pop_back();
    if (RT.heap().loadColor(Node) == Color::Blue) {
      std::fprintf(stderr, "long-lived tree node reclaimed — GC bug!\n");
      return 1;
    }
    ++Checked;
    for (uint32_t I = 0; I < NodeRefs; ++I)
      if (ObjectRef Child = M->readRef(Node, I); Child != NullRef)
        Walk.push_back(Child);
  }

  double ElapsedMs = double(nowNanos() - Start) * 1e-6;
  GcRunStats Stats = RT.gcStats();
  std::printf("completed in %.1f ms; long-lived tree intact (%d nodes)\n",
              ElapsedMs, Checked);
  std::printf("GC: %zu partial + %zu full collections, %llu objects freed, "
              "%.1f%% GC active\n",
              Stats.count(CycleKind::Partial), Stats.count(CycleKind::Full),
              (unsigned long long)Stats.totalAll(&CycleStats::ObjectsFreed),
              Stats.percentActive(uint64_t(ElapsedMs * 1e6)));
  return 0;
}

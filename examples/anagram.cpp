//===- examples/anagram.cpp - The paper's Anagram benchmark, for real ------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
//
// A working reimplementation of the paper's Anagram program (Section 8.2):
// "an anagram generator using a simple, recursive routine to generate all
// permutations of the characters in the input string.  If all resulting
// words in a permuted string are found in the dictionary, the permuted
// string is displayed.  This program is collection-intensive, creating and
// freeing many strings."
//
// Every string lives on the GC heap; the recursion allocates a fresh
// string per permutation step, exactly the churn that made the original a
// GC torture test.  The dictionary is a GC-heap hash table built once
// (it becomes the old generation).
//
// Run:  ./example_anagram [phrase]      (default: "listen cat")
//
//===----------------------------------------------------------------------===//

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/GenGc.h"

using namespace gengc;

namespace {

/// Heap strings: 0 ref slots, data = [length word, packed chars...].
struct HeapStrings {
  explicit HeapStrings(Runtime &RT) : H(RT.heap()) {}

  ObjectRef make(Mutator &M, const std::string &Text) {
    ObjectRef Ref = M.allocate(0, uint32_t(4 + Text.size()));
    storeDataWord(H, Ref, 0, uint32_t(Text.size()));
    for (size_t I = 0; I < Text.size(); I += 4) {
      uint32_t Word = 0;
      for (size_t J = 0; J < 4 && I + J < Text.size(); ++J)
        Word |= uint32_t(uint8_t(Text[I + J])) << (8 * J);
      storeDataWord(H, Ref, uint32_t(1 + I / 4), Word);
    }
    return Ref;
  }

  std::string get(ObjectRef Ref) {
    uint32_t Len = loadDataWord(H, Ref, 0);
    std::string Out(Len, '\0');
    for (uint32_t I = 0; I < Len; ++I)
      Out[I] = char(loadDataWord(H, Ref, 1 + I / 4) >> (8 * (I % 4)));
    return Out;
  }

  Heap &H;
};

/// A GC-heap hash set of strings: bucket array object -> chain of entry
/// objects (entry = [next, string]).
class HeapDictionary {
public:
  HeapDictionary(Runtime &RT, Mutator &M, HeapStrings &Strings,
                 uint32_t NumBuckets)
      : RT(RT), Strings(Strings), NumBuckets(NumBuckets) {
    Buckets = M.allocate(NumBuckets, 0);
    RT.globalRoots().addRoot(Buckets);
  }

  void insert(Mutator &M, const std::string &Word) {
    uint32_t B = hashOf(Word) % NumBuckets;
    RootScope Roots(M);
    ObjectRef Entry = Roots.add(M.allocate(2, 0));
    ObjectRef Str = Strings.make(M, Word);
    M.writeRef(Entry, 1, Str);
    M.writeRef(Entry, 0, M.readRef(Buckets, B));
    M.writeRef(Buckets, B, Entry);
  }

  bool contains(Mutator &M, const std::string &Word) {
    uint32_t B = hashOf(Word) % NumBuckets;
    for (ObjectRef Entry = M.readRef(Buckets, B); Entry != NullRef;
         Entry = M.readRef(Entry, 0))
      if (Strings.get(M.readRef(Entry, 1)) == Word)
        return true;
    return false;
  }

private:
  static uint32_t hashOf(const std::string &Word) {
    uint32_t Hash = 2166136261u;
    for (char C : Word)
      Hash = (Hash ^ uint8_t(C)) * 16777619u;
    return Hash;
  }

  Runtime &RT;
  HeapStrings &Strings;
  uint32_t NumBuckets;
  ObjectRef Buckets;
};

/// The recursive permutation generator.  Each step allocates the partial
/// permutation as a fresh heap string (rooted while recursion continues) —
/// the paper's "creating and freeing many strings".
class AnagramSearch {
public:
  AnagramSearch(Runtime &RT, Mutator &M, HeapStrings &Strings,
                HeapDictionary &Dict)
      : RT(RT), M(M), Strings(Strings), Dict(Dict) {}

  uint64_t Generated = 0;
  std::vector<std::string> Found;

  void run(const std::string &Letters) {
    std::string Remaining = Letters;
    permute(Remaining, "");
  }

private:
  void permute(std::string &Remaining, const std::string &Prefix) {
    M.cooperate();
    if (Remaining.empty()) {
      ++Generated;
      // Allocate the candidate on the heap (short-lived), then check each
      // space-separated word against the dictionary.
      RootScope Roots(M);
      ObjectRef Candidate = Roots.add(Strings.make(M, Prefix));
      if (allWordsInDictionary(Strings.get(Candidate)))
        Found.push_back(Strings.get(Candidate));
      return;
    }
    for (size_t I = 0; I < Remaining.size(); ++I) {
      char C = Remaining[I];
      // Skip duplicate letters at the same depth.
      if (I > 0 && Remaining[I - 1] == C)
        continue;
      Remaining.erase(I, 1);
      // Fresh heap string per step: deliberate allocation churn.  The
      // scope keeps it rooted across the recursion.
      {
        RootScope Roots(M);
        ObjectRef Step = Roots.add(Strings.make(M, Prefix + C));
        permute(Remaining, Strings.get(Step));
      }
      Remaining.insert(I, 1, C);
    }
  }

  bool allWordsInDictionary(const std::string &Candidate) {
    size_t Start = 0;
    while (Start < Candidate.size()) {
      size_t End = Candidate.find(' ', Start);
      if (End == std::string::npos)
        End = Candidate.size();
      if (End > Start &&
          !Dict.contains(M, Candidate.substr(Start, End - Start)))
        return false;
      Start = End + 1;
    }
    return true;
  }

  Runtime &RT;
  Mutator &M;
  HeapStrings &Strings;
  HeapDictionary &Dict;
};

const char *DefaultDictionary[] = {
    "a",    "act",    "an",    "ant",   "at",   "cat",    "eat",  "enlist",
    "in",   "inlets", "it",    "lease", "let",  "listen", "net",  "nil",
    "sat",  "sea",    "seat",  "set",   "silent", "sin",  "sit",  "tan",
    "tea",  "ten",    "tin",   "tinsel", "antic", "cant",  "naive", "slab",
};

} // namespace

int main(int Argc, char **Argv) {
  std::string Phrase = Argc > 1 ? Argv[1] : "listen cat";

  RuntimeConfig Config;
  Config.Heap.HeapBytes = 32ull << 20;
  Config.Choice = CollectorChoice::Generational;
  Config.Collector.Trigger.YoungBytes = 4ull << 20;
  Runtime RT(Config);

  auto M = RT.attachMutator();
  HeapStrings Strings(RT);
  HeapDictionary Dict(RT, *M, Strings, 509);
  for (const char *Word : DefaultDictionary)
    Dict.insert(*M, Word);

  // Strip spaces from the phrase, sort letters for duplicate-skipping, and
  // search.  Spaces are re-introduced as permutation characters so the
  // candidate splits into words (one space per original space).
  std::string Letters;
  for (char C : Phrase)
    Letters += C;
  std::sort(Letters.begin(), Letters.end());

  AnagramSearch Search(RT, *M, Strings, Dict);
  Search.run(Letters);

  std::printf("phrase: \"%s\"\n", Phrase.c_str());
  std::printf("permutations generated: %llu\n",
              (unsigned long long)Search.Generated);
  std::printf("anagrams found: %zu\n", Search.Found.size());
  for (const std::string &Hit : Search.Found)
    std::printf("  %s\n", Hit.c_str());

  GcRunStats Stats = RT.gcStats();
  std::printf("\nGC: %zu collections (%zu partial, %zu full), "
              "%llu objects freed, %.1f%% of young objects died young\n",
              Stats.Cycles.size(), Stats.count(CycleKind::Partial),
              Stats.count(CycleKind::Full),
              (unsigned long long)Stats.totalAll(&CycleStats::ObjectsFreed),
              Stats.percentFreedPartialObjects());

  return 0;
}

//===- examples/quickstart.cpp - Five-minute tour of the API ---------------===//
//
// Part of the gengc project (PLDI 2000 generational on-the-fly GC repro).
//
//===----------------------------------------------------------------------===//
//
// Demonstrates the whole public API surface:
//   - configuring and creating a Runtime (heap size, card size, collector
//     choice, aging policy);
//   - attaching a mutator and allocating objects;
//   - rooted references (shadow stack + global roots);
//   - barriered pointer updates;
//   - cooperating with the on-the-fly collector and reading its statistics.
//
// Run:  ./example_quickstart
//
//===----------------------------------------------------------------------===//

#include <cstdio>

#include "core/GenGc.h"

using namespace gengc;

int main() {
  // 1. Configure.  Defaults reproduce the paper's setup: 32 MB heap,
  //    16-byte cards ("object marking"), simple promotion policy.
  RuntimeConfig Config;
  Config.Heap.HeapBytes = 32ull << 20;
  Config.Heap.CardBytes = 16;
  Config.Choice = CollectorChoice::Generational;
  Config.Collector.Trigger.YoungBytes = 4ull << 20; // the paper's best size
  // Start the committed-heap ramp high enough that this small demo's
  // collections are the ones we request, not growth-phase fulls.
  Config.Collector.Trigger.InitialSoftBytes = 16ull << 20;

  Runtime RT(Config);
  std::printf("runtime up: %llu MB heap, %u-byte cards\n",
              (unsigned long long)(RT.heap().heapBytes() >> 20),
              RT.heap().cards().cardBytes());

  // 2. Every program thread attaches a Mutator.  This thread is now a
  //    first-class citizen of the handshake protocol.
  auto M = RT.attachMutator();

  // 3. Allocate.  An object = N reference slots + raw data bytes.
  //    Reference slots come first and are zeroed; data is uninitialized.
  ObjectRef Node = M->allocate(/*RefSlots=*/2, /*DataBytes=*/16);
  storeDataWord(RT.heap(), Node, 0, 42);

  // 4. Roots.  Anything you want to keep alive must be reachable from the
  //    shadow stack, a global root, or another live object.  Stack writes
  //    need no barrier (the DLG property).  A RootScope pops everything
  //    pushed through it when it goes out of scope.
  RootScope Roots(*M);
  size_t Slot = Roots.addSlot(Node);

  // 5. Build a linked list of 100,000 nodes; writeRef is the paper's
  //    "Update" write barrier (Figure 1).
  for (int I = 0; I < 100000; ++I) {
    ObjectRef Next = M->allocate(2, 16);
    M->writeRef(Next, 0, Roots.get(Slot));
    Roots.set(Slot, Next);
    // Call cooperate() regularly — the analogue of Java's backward-branch
    // checks.  The collector never stops this thread; it only asks it to
    // acknowledge handshakes at its own pace.
    M->cooperate();
  }

  // 6. Drop most of the list (keep the first 10 nodes reachable) and let
  //    the collector work.  Partial collections reclaim the young dead;
  //    survivors are promoted to the old generation (they turn black).
  ObjectRef Head = Roots.get(Slot);
  for (int I = 0; I < 9; ++I)
    Head = M->readRef(Head, 0);
  M->writeRef(Head, 0, NullRef); // sever the tail: 99,990 nodes die
  RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);

  GcRunStats Stats = RT.gcStats();
  const CycleStats &Cycle = Stats.Cycles.back();
  std::printf("%s collection: freed %llu objects (%llu KB), "
              "%llu survivors promoted, %.2f ms\n",
              cycleKindName(Cycle.Kind),
              (unsigned long long)Cycle.ObjectsFreed,
              (unsigned long long)(Cycle.BytesFreed >> 10),
              (unsigned long long)Cycle.YoungSurvivors,
              double(Cycle.DurationNanos) * 1e-6);

  // 7. Inter-generational pointers: store a fresh (young) object into the
  //    now-old head.  The card-marking barrier records it; the next
  //    partial collection finds the young object through the dirty card.
  ObjectRef Young = M->allocate(0, 8);
  M->writeRef(Head, 1, Young);
  RT.collector().collectSyncCooperating(CycleRequest::Partial, *M);
  std::printf("young object stored in old head %s\n",
              RT.heap().loadColor(Young) != Color::Blue
                  ? "survived via its dirty card"
                  : "was LOST (bug!)");

  // 8. Global roots outlive any mutator.  (The shadow-stack roots are
  //    popped when Roots goes out of scope at the end of main.)
  RT.globalRoots().addRoot(Roots.get(Slot));

  // 9. A full collection reclaims old garbage too.
  RT.collector().collectSyncCooperating(CycleRequest::Full, *M);
  Stats = RT.gcStats();
  std::printf("after %zu cycles: %.1f%% of young objects died in partial "
              "collections\n",
              Stats.Cycles.size(), Stats.percentFreedPartialObjects());

  std::printf("quickstart done\n");
  return 0;
}
